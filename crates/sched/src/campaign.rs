//! Monte Carlo scheduling campaigns and the fault-tolerant fleet driver.
//!
//! Two layers live here:
//!
//! 1. **The Monte Carlo core** ([`run_campaign`], [`compare_policies`]) —
//!    re-evaluates one workload's profiled run under many randomly drawn
//!    interference schedules and collects the runtime distribution. Cache
//!    behaviour and data placement are fixed by the profiling run; only the
//!    timing reacts to the co-runners, so each trial is a cheap re-timing of
//!    the recorded timeline (see [`dismem_sim::RunReport::retime`]).
//!
//! 2. **The fleet driver** ([`run_fleet_campaign`], [`resume_campaign`]) — a
//!    deterministic work-queue over the paper's §7 parameter grid
//!    (workloads × scales × policies × capacities × links × seeds). Each cell
//!    has a stable content-addressed [`CellKey`]; completed cells are
//!    appended to a crash-consistent JSON-lines journal
//!    (see [`crate::journal`]); a panicking cell is caught with
//!    `std::panic::catch_unwind`, retried a bounded number of attempts, then
//!    quarantined into the report's `failed_cells` instead of aborting the
//!    campaign. Shards ([`Shard`]) partition the grid deterministically so
//!    independent processes can each run a slice and
//!    [`merge_shard_journals`](crate::journal::merge_shard_journals) can
//!    reassemble the exact sequential report. Fault injection for all of
//!    this lives in [`crate::fault`].

use crate::fault::FaultPlan;
use crate::journal::{CellMetrics, JournalError, JournalRecord, JournalWriter};
use crate::policy::SchedulingPolicy;
use crate::snapshot_cache::{SnapshotCache, SnapshotStats};
use dismem_analysis::{five_number_summary, mean, FiveNumberSummary};
use dismem_core::{fnv1a64, CellKey};
use dismem_profiler::{pooled_config, run_workload, RunOptions};
use dismem_sim::{InterferenceProfile, LinkParams, MachineConfig, RunReport};
use dismem_trace::{Recorder, TraceEvent};
use dismem_workloads::{InputScale, WorkloadKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::path::Path;

/// Campaign configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of runs per workload per policy (the paper uses 100).
    pub runs: usize,
    /// Number of interference epochs per run (the paper re-draws the level of
    /// interference every 60 s; with the simulator's scaled-down runtimes the
    /// epoch length is expressed as a fraction of the idle runtime instead).
    pub epochs_per_run: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            runs: 100,
            epochs_per_run: 8,
            seed: 0xD15C,
        }
    }
}

/// Result of one campaign (one workload under one policy).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Workload name.
    pub workload: String,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Runtime of every trial, in seconds.
    pub runtimes_s: Vec<f64>,
    /// Five-number summary of the runtimes.
    pub summary: FiveNumberSummary,
    /// Mean runtime.
    pub mean_s: f64,
}

/// Side-by-side comparison of the two policies for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Workload name.
    pub workload: String,
    /// Baseline (interference-oblivious) campaign.
    pub baseline: CampaignResult,
    /// Interference-aware campaign.
    pub aware: CampaignResult,
}

impl PolicyComparison {
    /// Mean speedup of the interference-aware policy over the baseline, in
    /// percent (the paper reports 0–4 % depending on the workload).
    pub fn mean_speedup_percent(&self) -> f64 {
        if self.aware.mean_s == 0.0 {
            return 0.0;
        }
        (self.baseline.mean_s / self.aware.mean_s - 1.0) * 100.0
    }

    /// Reduction of the 75th-percentile runtime in percent (the paper's
    /// variability metric).
    pub fn p75_reduction_percent(&self) -> f64 {
        if self.baseline.summary.q3 == 0.0 {
            return 0.0;
        }
        (1.0 - self.aware.summary.q3 / self.baseline.summary.q3) * 100.0
    }
}

fn schedule_for_trial(
    rng: &mut StdRng,
    idle_runtime_s: f64,
    epochs: usize,
    max_loi: f64,
) -> InterferenceProfile {
    // Epochs are sized so the whole (possibly slowed-down) run sees several
    // interference changes, as in the paper's 60-second epochs.
    let epoch_len = idle_runtime_s * 2.0 / epochs as f64;
    let epochs: Vec<(f64, f64)> = (0..epochs.max(1))
        .map(|i| (i as f64 * epoch_len, rng.gen_range(0.0..=max_loi)))
        .collect();
    InterferenceProfile::schedule(epochs)
}

/// Runtime of one Monte Carlo trial. Each trial derives its RNG from the
/// campaign seed and the trial index alone, so trials are order-independent
/// and a campaign yields identical results however its trials are scheduled.
fn trial_runtime(
    report: &RunReport,
    policy: SchedulingPolicy,
    config: &CampaignConfig,
    idle_runtime_s: f64,
    trial: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_add(trial as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ policy.max_loi().to_bits(),
    );
    let schedule = schedule_for_trial(
        &mut rng,
        idle_runtime_s,
        config.epochs_per_run,
        policy.max_loi(),
    );
    report.retime(&schedule).total_runtime_s
}

fn campaign_result(
    workload_name: &str,
    policy: SchedulingPolicy,
    runtimes_s: Vec<f64>,
) -> CampaignResult {
    let summary = five_number_summary(&runtimes_s);
    let mean_s = mean(&runtimes_s);
    CampaignResult {
        workload: workload_name.to_string(),
        policy,
        runtimes_s,
        summary,
        mean_s,
    }
}

/// Runs a campaign for one workload (represented by its profiled pooled run)
/// under one policy. Trials execute concurrently on the thread pool; results
/// are identical to [`run_campaign_sequential`] for the same inputs.
pub fn run_campaign(
    workload_name: &str,
    report: &RunReport,
    policy: SchedulingPolicy,
    config: &CampaignConfig,
) -> CampaignResult {
    assert!(config.runs > 0 && config.epochs_per_run > 0);
    let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
    let runtimes_s: Vec<f64> = (0..config.runs)
        .into_par_iter()
        .map(|trial| trial_runtime(report, policy, config, idle, trial))
        .collect();
    campaign_result(workload_name, policy, runtimes_s)
}

/// Single-threaded reference implementation of [`run_campaign`], kept for
/// the determinism tests (parallel and sequential execution must agree bit
/// for bit) and for callers that want to avoid spawning workers.
pub fn run_campaign_sequential(
    workload_name: &str,
    report: &RunReport,
    policy: SchedulingPolicy,
    config: &CampaignConfig,
) -> CampaignResult {
    assert!(config.runs > 0 && config.epochs_per_run > 0);
    let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
    let runtimes_s: Vec<f64> = (0..config.runs)
        .map(|trial| trial_runtime(report, policy, config, idle, trial))
        .collect();
    campaign_result(workload_name, policy, runtimes_s)
}

/// Runs both policies for one workload and returns the comparison.
pub fn compare_policies(
    workload_name: &str,
    report: &RunReport,
    config: &CampaignConfig,
) -> PolicyComparison {
    PolicyComparison {
        workload: workload_name.to_string(),
        baseline: run_campaign(
            workload_name,
            report,
            SchedulingPolicy::RandomBaseline,
            config,
        ),
        aware: run_campaign(
            workload_name,
            report,
            SchedulingPolicy::InterferenceAware,
            config,
        ),
    }
}

/// [`compare_policies`] with sequential campaigns: for callers that are
/// already running one comparison per pool worker (e.g. a parallel sweep
/// over workloads), where nesting the trial fan-out would oversubscribe the
/// CPU with scoped threads. Results are identical to [`compare_policies`].
pub fn compare_policies_sequential(
    workload_name: &str,
    report: &RunReport,
    config: &CampaignConfig,
) -> PolicyComparison {
    PolicyComparison {
        workload: workload_name.to_string(),
        baseline: run_campaign_sequential(
            workload_name,
            report,
            SchedulingPolicy::RandomBaseline,
            config,
        ),
        aware: run_campaign_sequential(
            workload_name,
            report,
            SchedulingPolicy::InterferenceAware,
            config,
        ),
    }
}

/// [`compare_policies`] with per-cell isolation: a panic anywhere inside the
/// comparison (profiled report replay, summary statistics) is caught and
/// returned as an error message instead of unwinding into the caller's sweep.
/// Sweep drivers use this so one poisoned cell yields a reported gap, not a
/// lost campaign.
pub fn compare_policies_checked(
    workload_name: &str,
    report: &RunReport,
    config: &CampaignConfig,
) -> Result<PolicyComparison, String> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        compare_policies(workload_name, report, config)
    }))
    .map_err(panic_message)
}

// ---------------------------------------------------------------------------
// Fleet campaigns: work queue, journal, retry/quarantine, shards.
// ---------------------------------------------------------------------------

/// The §7 parameter grid of a fleet campaign plus its execution knobs.
///
/// The cartesian product of the six axis vectors is the campaign's cell set;
/// [`FleetSpec::digest_hex`] fingerprints the whole spec (axes, retry bound
/// and the machine-config digest) so journals are never replayed across
/// configuration changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Workload names as registered in `dismem-workloads` (e.g. "BFS").
    pub workloads: Vec<String>,
    /// Input-scale labels ("tiny", "x1", "x2", "x4").
    pub scales: Vec<String>,
    /// Policy labels ("baseline", "aware").
    pub policies: Vec<String>,
    /// Local-capacity fractions in permille of the footprint.
    pub capacities_permille: Vec<u32>,
    /// Link-configuration labels ("upi", "upi-x2").
    pub links: Vec<String>,
    /// Base RNG seeds, one cell per seed.
    pub seeds: Vec<u64>,
    /// Attempts per cell before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Digest of the machine configuration cells run under
    /// (see [`MachineConfig::config_digest`]).
    pub config_digest: u64,
}

impl FleetSpec {
    /// A small default grid over all six paper workloads at tiny scale:
    /// both policies × three pool capacities × the UPI link × one seed.
    pub fn tiny_grid(config: &MachineConfig) -> FleetSpec {
        FleetSpec {
            workloads: WorkloadKind::all()
                .iter()
                .map(|k| k.name().to_string())
                .collect(),
            scales: vec!["tiny".to_string()],
            policies: vec!["baseline".to_string(), "aware".to_string()],
            capacities_permille: vec![250, 500, 750],
            links: vec!["upi".to_string()],
            seeds: vec![0xD15C],
            max_attempts: 3,
            config_digest: config.config_digest(),
        }
    }

    /// Every cell of the grid, in deterministic axis-nested order
    /// (workload → scale → policy → capacity → link → seed).
    pub fn cells(&self) -> Vec<CellKey> {
        let mut cells = Vec::new();
        for workload in &self.workloads {
            for scale in &self.scales {
                for policy in &self.policies {
                    for &capacity_permille in &self.capacities_permille {
                        for link in &self.links {
                            for &seed in &self.seeds {
                                cells.push(CellKey {
                                    workload: workload.clone(),
                                    scale: scale.clone(),
                                    policy: policy.clone(),
                                    capacity_permille,
                                    link: link.clone(),
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Content digest of the spec as a 16-hex-digit string: FNV-1a over the
    /// serialized spec (which includes the machine-config digest). This is
    /// the value stamped on every journal record.
    pub fn digest_hex(&self) -> String {
        let mut json = String::new();
        Serialize::serialize_json(self, &mut json);
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }
}

/// One deterministic slice of a fleet grid: shard `index` of `count` owns
/// every cell whose position in [`FleetSpec::cells`] is congruent to `index`
/// modulo `count`. Shards are disjoint, cover the grid, and are stable across
/// processes, so each can run in its own process against its own journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index.
    pub index: u32,
    /// Total number of shards (≥ 1).
    pub count: u32,
}

impl Shard {
    /// Creates a shard, validating `index < count`.
    pub fn new(index: u32, count: u32) -> Shard {
        assert!(count > 0, "shard count must be at least 1");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        Shard { index, count }
    }

    /// Parses the CLI form `i/N` (e.g. `--shard 0/3`).
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("shard `{text}` is not of the form i/N"))?;
        let index: u32 = index
            .trim()
            .parse()
            .map_err(|_| format!("shard index `{index}` is not an integer"))?;
        let count: u32 = count
            .trim()
            .parse()
            .map_err(|_| format!("shard count `{count}` is not an integer"))?;
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(Shard { index, count })
    }

    /// True when this shard owns the cell at grid position `cell_index`.
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index as u64 % u64::from(self.count) == u64::from(self.index)
    }
}

/// Executes one cell. The fleet driver calls this inside `catch_unwind`, so
/// implementations may panic; a panic counts as a failed attempt exactly like
/// a returned `Err`.
pub trait CellRunner {
    /// Runs the cell and returns its metrics, or an error message.
    fn run(&self, key: &CellKey) -> Result<CellMetrics, String>;

    /// Warm-start activity counters accumulated so far. Runners without a
    /// snapshot cache report all-zero stats; the fleet driver differences
    /// this across a campaign to stamp the report's
    /// [`snapshot`](CampaignReport::snapshot) field.
    fn snapshot_stats(&self) -> SnapshotStats {
        SnapshotStats::default()
    }
}

/// The production [`CellRunner`]: profiles the workload under the cell's
/// pooling configuration and prices it with a Monte Carlo interference
/// campaign seeded from the cell key.
#[derive(Debug, Clone)]
pub struct SimCellRunner {
    /// Base machine configuration; the cell's link and capacity axes are
    /// applied on top of it.
    pub base: MachineConfig,
    /// Monte Carlo trials per cell.
    pub runs: usize,
    /// Interference epochs per trial.
    pub epochs_per_run: usize,
    /// Warm-start snapshot cache; `None` profiles every cell cold.
    snapshots: Option<SnapshotCache>,
}

impl SimCellRunner {
    /// Runner with the paper's campaign depth (100 trials × 8 epochs).
    pub fn new(base: MachineConfig) -> SimCellRunner {
        SimCellRunner {
            base,
            runs: 100,
            epochs_per_run: 8,
            snapshots: None,
        }
    }

    /// Runner with a reduced Monte Carlo depth for smoke tests and CI.
    pub fn quick(base: MachineConfig) -> SimCellRunner {
        SimCellRunner {
            base,
            runs: 20,
            epochs_per_run: 4,
            snapshots: None,
        }
    }

    /// Attaches a content-addressed snapshot cache: cells sharing a warm
    /// prefix (workload/scale/capacity/link/config) restore the profiled
    /// machine from `<dir>/<digest:016x>.snap` instead of re-simulating the
    /// warm-up. Reports stay bit-identical to cold runs; unusable snapshots
    /// fall back cold and are counted (see [`crate::snapshot_cache`]).
    pub fn with_snapshot_cache(mut self, cache: SnapshotCache) -> SimCellRunner {
        self.snapshots = Some(cache);
        self
    }

    /// The attached snapshot cache, if any.
    pub fn snapshot_cache(&self) -> Option<&SnapshotCache> {
        self.snapshots.as_ref()
    }
}

impl CellRunner for SimCellRunner {
    fn run(&self, key: &CellKey) -> Result<CellMetrics, String> {
        let kind = WorkloadKind::all()
            .into_iter()
            .find(|k| k.name() == key.workload)
            .ok_or_else(|| format!("unknown workload `{}`", key.workload))?;
        let workload = if key.scale == "tiny" {
            kind.instantiate_tiny()
        } else {
            let scale = [InputScale::X1, InputScale::X2, InputScale::X4]
                .into_iter()
                .find(|s| s.label() == key.scale)
                .ok_or_else(|| format!("unknown scale `{}`", key.scale))?;
            kind.instantiate(scale)
        };
        let policy = match key.policy.as_str() {
            "baseline" => SchedulingPolicy::RandomBaseline,
            "aware" => SchedulingPolicy::InterferenceAware,
            other => return Err(format!("unknown policy `{other}`")),
        };
        let mut base = self.base.clone();
        base.link = match key.link.as_str() {
            "upi" => LinkParams::upi(),
            // A hypothetical next-generation link with twice the payload and
            // raw bandwidth, for what-if sweeps.
            "upi-x2" => {
                let mut link = LinkParams::upi();
                link.data_bandwidth_bps *= 2.0;
                link.raw_bandwidth_bps *= 2.0;
                link
            }
            other => return Err(format!("unknown link `{other}`")),
        };
        if key.capacity_permille > 1000 {
            return Err(format!(
                "capacity {}‰ exceeds the footprint",
                key.capacity_permille
            ));
        }
        let local_fraction = f64::from(key.capacity_permille) / 1000.0;
        let config = pooled_config(&base, workload.as_ref(), local_fraction);
        let report = match &self.snapshots {
            Some(cache) => cache.profiled_report(key, workload.as_ref(), &config),
            None => run_workload(workload.as_ref(), &RunOptions::new(config)),
        };
        let campaign = run_campaign(
            &key.workload,
            &report,
            policy,
            &CampaignConfig {
                runs: self.runs,
                epochs_per_run: self.epochs_per_run,
                seed: key.seed,
            },
        );
        Ok(CellMetrics {
            trials: campaign.runtimes_s.len() as u32,
            mean_runtime_s: campaign.mean_s,
            min_runtime_s: campaign.summary.min,
            q1_runtime_s: campaign.summary.q1,
            median_runtime_s: campaign.summary.median,
            q3_runtime_s: campaign.summary.q3,
            max_runtime_s: campaign.summary.max,
            remote_access_ratio: report.remote_access_ratio(),
        })
    }

    fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshots
            .as_ref()
            .map_or_else(SnapshotStats::default, SnapshotCache::stats)
    }
}

/// A successfully completed cell in a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompletedCell {
    /// The cell's identity.
    pub key: CellKey,
    /// Attempts consumed (> 1 when retries healed a transient failure).
    pub attempts: u32,
    /// The cell's metrics.
    pub metrics: CellMetrics,
}

/// A quarantined cell: every attempt failed, the campaign carried on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FailedCell {
    /// The cell's identity.
    pub key: CellKey,
    /// Attempts consumed (equals the spec's `max_attempts`).
    pub attempts: u32,
    /// The final attempt's panic or error message.
    pub error: String,
}

/// Final report of a fleet campaign. Cells are sorted by canonical id, so two
/// reports over the same journal content serialize byte-identically — the
/// property the fault-injection suite asserts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignReport {
    /// Spec digest every contributing record was validated against.
    pub spec_digest: String,
    /// Number of cells the (possibly sharded) campaign owns.
    pub total_cells: u64,
    /// Successful cells, sorted by cell id.
    pub completed: Vec<CompletedCell>,
    /// Quarantined cells, sorted by cell id.
    pub failed_cells: Vec<FailedCell>,
    /// Journal records dropped during resume instead of replayed: foreign
    /// spec digest or a cell outside this shard's grid slice. Zero on a
    /// fresh run and on a clean resume, so those reports stay byte-identical
    /// to an uninterrupted run; a nonzero value is the audit trail of a
    /// journal that carried foreign records.
    pub rejected_records: u64,
    /// True when resume dropped a torn trailing journal line (the cell was
    /// re-run). False on a fresh run and on a clean resume.
    pub dropped_torn_tail: bool,
    /// Warm-start activity of this campaign's cells: snapshot-cache hits,
    /// misses, and cold-run fallbacks (all zero for cache-less runners and
    /// for resumes that replayed every cell from the journal). Fallbacks are
    /// the audit trail of unusable snapshots — the cells still completed,
    /// bit-identically to a cold run.
    pub snapshot: SnapshotStats,
}

/// What a resume replayed versus re-ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeStats {
    /// Records replayed from the journal (digest-matching, in-grid).
    pub replayed: u64,
    /// Records dropped because their spec digest mismatched.
    pub digest_rejected: u64,
    /// Records dropped because their cell is not in this shard's grid slice.
    pub unknown_cells: u64,
    /// True when the journal ended in a torn line (dropped and re-run).
    pub torn_tail: bool,
    /// Cells executed (and journaled) by this invocation.
    pub reran: u64,
}

/// Fleet-campaign failure modes.
#[derive(Debug)]
pub enum CampaignError {
    /// Journal I/O, corruption, duplicate or digest error.
    Journal(JournalError),
    /// `run_fleet_campaign` was pointed at a journal that already holds
    /// records; use [`resume_campaign`] to continue it.
    JournalNotEmpty {
        /// Records already present.
        records: u64,
    },
    /// The campaign was stopped by an injected [`FaultPlan`] kill.
    Interrupted {
        /// Records durable in the journal at the kill point.
        cells_journaled: u64,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "{e}"),
            CampaignError::JournalNotEmpty { records } => write!(
                f,
                "journal already holds {records} records; use resume_campaign"
            ),
            CampaignError::Interrupted { cells_journaled } => write!(
                f,
                "campaign interrupted by fault plan after {cells_journaled} journaled cells"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> CampaignError {
        CampaignError::Journal(e)
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs a fresh fleet campaign (optionally one shard of it), journaling every
/// cell as it completes. The journal at `journal_path` must be absent or
/// empty — continuing an existing journal is [`resume_campaign`]'s job.
pub fn run_fleet_campaign(
    spec: &FleetSpec,
    runner: &dyn CellRunner,
    journal_path: &Path,
    shard: Option<Shard>,
    fault: &FaultPlan,
) -> Result<CampaignReport, CampaignError> {
    let writer = JournalWriter::open(journal_path)?;
    if !writer.is_empty() {
        return Err(CampaignError::JournalNotEmpty {
            records: writer.len(),
        });
    }
    drive(spec, runner, journal_path, shard, fault, None).map(|(report, _)| report)
}

/// [`run_fleet_campaign`] with a flight recorder attached: cell lifecycle
/// events (started / finished / retried / quarantined) are emitted as the
/// work queue drains. Recording is read-only — the report is bit-identical
/// to an unrecorded run's.
pub fn run_fleet_campaign_traced(
    spec: &FleetSpec,
    runner: &dyn CellRunner,
    journal_path: &Path,
    shard: Option<Shard>,
    fault: &FaultPlan,
    recorder: &mut dyn Recorder,
) -> Result<CampaignReport, CampaignError> {
    let writer = JournalWriter::open(journal_path)?;
    if !writer.is_empty() {
        return Err(CampaignError::JournalNotEmpty {
            records: writer.len(),
        });
    }
    drive(spec, runner, journal_path, shard, fault, Some(recorder)).map(|(report, _)| report)
}

/// Resumes a fleet campaign from its journal: replays digest-matching
/// records, drops a torn trailing line, re-runs only the missing cells, and
/// returns a report bit-identical to the one an uninterrupted run produces.
/// Records with a foreign spec digest are rejected (their cells re-run); two
/// digest-matching records for one cell are [`JournalError::DuplicateKey`].
pub fn resume_campaign(
    spec: &FleetSpec,
    runner: &dyn CellRunner,
    journal_path: &Path,
    shard: Option<Shard>,
    fault: &FaultPlan,
) -> Result<(CampaignReport, ResumeStats), CampaignError> {
    drive(spec, runner, journal_path, shard, fault, None)
}

/// [`resume_campaign`] with a flight recorder attached: on top of the cell
/// lifecycle events, every journal record the resume drops instead of
/// replaying (foreign digest, unknown cell, torn tail) is emitted as a
/// [`TraceEvent::JournalRecordRejected`]. Recording is read-only.
pub fn resume_campaign_traced(
    spec: &FleetSpec,
    runner: &dyn CellRunner,
    journal_path: &Path,
    shard: Option<Shard>,
    fault: &FaultPlan,
    recorder: &mut dyn Recorder,
) -> Result<(CampaignReport, ResumeStats), CampaignError> {
    drive(spec, runner, journal_path, shard, fault, Some(recorder))
}

fn drive(
    spec: &FleetSpec,
    runner: &dyn CellRunner,
    journal_path: &Path,
    shard: Option<Shard>,
    fault: &FaultPlan,
    mut recorder: Option<&mut dyn Recorder>,
) -> Result<(CampaignReport, ResumeStats), CampaignError> {
    assert!(spec.max_attempts >= 1, "max_attempts must be at least 1");
    let digest = spec.digest_hex();
    // Snapshot-cache counters are differenced across this drive, so a cache
    // shared between campaigns attributes each cell to the right report.
    let snapshot_before = runner.snapshot_stats();
    let cells: Vec<CellKey> = spec
        .cells()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| shard.map_or(true, |s| s.owns(*i)))
        .map(|(_, key)| key)
        .collect();
    let cell_ids: BTreeSet<String> = cells.iter().map(CellKey::id).collect();

    // Replay the journal. The writer re-reads the same file; opening it first
    // would be equivalent, but loading explicitly keeps the torn-tail flag.
    let loaded = crate::journal::load_journal(journal_path)?;
    let mut stats = ResumeStats {
        torn_tail: loaded.torn_tail,
        ..ResumeStats::default()
    };
    let whole_records = loaded.records.len() as u64;
    let mut done: BTreeMap<String, JournalRecord> = BTreeMap::new();
    for (record_index, record) in loaded.records.into_iter().enumerate() {
        let id = record.key.id();
        let reason = if record.digest != digest {
            stats.digest_rejected += 1;
            "foreign-digest"
        } else if !cell_ids.contains(&id) {
            stats.unknown_cells += 1;
            "unknown-cell"
        } else {
            if done.insert(id.clone(), record).is_some() {
                return Err(JournalError::DuplicateKey(id).into());
            }
            stats.replayed += 1;
            continue;
        };
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record_event(TraceEvent::JournalRecordRejected {
                record_index: record_index as u64,
                reason: reason.to_string(),
            });
        }
    }
    if stats.torn_tail {
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record_event(TraceEvent::JournalRecordRejected {
                record_index: whole_records,
                reason: "torn-tail".to_string(),
            });
        }
    }

    let mut writer = JournalWriter::open(journal_path)?;

    // Deterministic work queue: missing cells in grid order (the index is
    // the cell's position in the shard's slice, carried for the trace). A
    // failed attempt re-enters at the back — that attempt-counted backoff
    // lets every other pending cell run before the retry, with no wall
    // clocks involved.
    let mut queue: VecDeque<(u64, CellKey, u32)> = cells
        .iter()
        .enumerate()
        .filter(|(_, key)| !done.contains_key(&key.id()))
        .map(|(i, key)| (i as u64, key.clone(), 1))
        .collect();

    while let Some((cell_index, key, attempt)) = queue.pop_front() {
        let id = key.id();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record_event(TraceEvent::CampaignCellStarted {
                cell_index,
                cell: id.clone(),
                attempt,
            });
        }
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            fault.poison_check(&id, attempt);
            runner.run(&key)
        }))
        .unwrap_or_else(|payload| Err(panic_message(payload)));
        let record = match outcome {
            Ok(metrics) => JournalRecord {
                digest: digest.clone(),
                key,
                attempts: attempt,
                status: "ok".to_string(),
                metrics: Some(metrics),
                error: None,
            },
            Err(error) => {
                if attempt < spec.max_attempts {
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.record_event(TraceEvent::CampaignCellRetried {
                            cell_index,
                            cell: id.clone(),
                            attempt,
                        });
                    }
                    queue.push_back((cell_index, key, attempt + 1));
                    continue;
                }
                JournalRecord {
                    digest: digest.clone(),
                    key,
                    attempts: attempt,
                    status: "failed".to_string(),
                    metrics: None,
                    error: Some(error),
                }
            }
        };
        writer.append(&record)?;
        if let Some(rec) = recorder.as_deref_mut() {
            let ok = record.status == "ok";
            rec.record_event(TraceEvent::CampaignCellFinished {
                cell_index,
                cell: id.clone(),
                attempt,
                ok,
            });
            if !ok {
                rec.record_event(TraceEvent::CampaignCellQuarantined {
                    cell_index,
                    cell: id.clone(),
                    attempts: attempt,
                });
            }
        }
        done.insert(id, record);
        stats.reran += 1;
        if fault.should_kill(writer.len()) {
            fault.apply_truncation(journal_path)?;
            return Err(CampaignError::Interrupted {
                cells_journaled: writer.len(),
            });
        }
    }

    let snapshot_after = runner.snapshot_stats();
    let snapshot = SnapshotStats {
        hits: snapshot_after.hits.saturating_sub(snapshot_before.hits),
        misses: snapshot_after.misses.saturating_sub(snapshot_before.misses),
        fallbacks: snapshot_after
            .fallbacks
            .saturating_sub(snapshot_before.fallbacks),
    };
    let report = build_report(&digest, cells.len() as u64, &done, &stats, snapshot)?;
    Ok((report, stats))
}

fn build_report(
    digest: &str,
    total_cells: u64,
    done: &BTreeMap<String, JournalRecord>,
    stats: &ResumeStats,
    snapshot: SnapshotStats,
) -> Result<CampaignReport, CampaignError> {
    let mut completed = Vec::new();
    let mut failed_cells = Vec::new();
    // BTreeMap iteration is id-sorted: the report's order is the journal's
    // total order regardless of execution or replay order.
    for record in done.values() {
        match (record.status.as_str(), &record.metrics, &record.error) {
            ("ok", Some(metrics), _) => completed.push(CompletedCell {
                key: record.key.clone(),
                attempts: record.attempts,
                metrics: metrics.clone(),
            }),
            ("failed", _, Some(error)) => failed_cells.push(FailedCell {
                key: record.key.clone(),
                attempts: record.attempts,
                error: error.clone(),
            }),
            _ => {
                // Unreachable for records built here or validated by
                // `JournalRecord::from_json`; surfaced as corruption rather
                // than panicking (quarantine path must not panic).
                return Err(JournalError::Corrupt {
                    line: 0,
                    message: format!(
                        "record for cell {} violates the status/metrics/error invariant",
                        record.key.id()
                    ),
                }
                .into());
            }
        }
    }
    Ok(CampaignReport {
        spec_digest: digest.to_string(),
        total_cells,
        completed,
        failed_cells,
        rejected_records: stats.digest_rejected + stats.unknown_cells,
        dropped_torn_tail: stats.torn_tail,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_profiler::{pooled_config, run_workload, RunOptions};
    use dismem_sim::MachineConfig;
    use dismem_workloads::WorkloadKind;

    fn pooled_report(kind: WorkloadKind) -> RunReport {
        let w = kind.instantiate_tiny();
        let cfg = pooled_config(&MachineConfig::test_config(), w.as_ref(), 0.5);
        run_workload(w.as_ref(), &RunOptions::new(cfg))
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            runs: 30,
            epochs_per_run: 6,
            seed: 42,
        }
    }

    #[test]
    fn aware_policy_is_no_slower_and_less_variable() {
        let report = pooled_report(WorkloadKind::Hypre);
        let cmp = compare_policies("Hypre", &report, &small_config());
        assert!(
            cmp.mean_speedup_percent() >= -0.5,
            "{}",
            cmp.mean_speedup_percent()
        );
        assert!(
            cmp.aware.summary.max <= cmp.baseline.summary.max + 1e-12,
            "worst case must not get worse"
        );
        assert!(cmp.aware.summary.range() <= cmp.baseline.summary.range() + 1e-12);
    }

    #[test]
    fn sensitive_workload_benefits_more_than_insensitive_one() {
        let hypre = compare_policies(
            "Hypre",
            &pooled_report(WorkloadKind::Hypre),
            &small_config(),
        );
        let hpl = compare_policies("HPL", &pooled_report(WorkloadKind::Hpl), &small_config());
        assert!(
            hypre.mean_speedup_percent() >= hpl.mean_speedup_percent() - 0.2,
            "Hypre {} vs HPL {}",
            hypre.mean_speedup_percent(),
            hpl.mean_speedup_percent()
        );
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let report = pooled_report(WorkloadKind::Bfs);
        let a = run_campaign(
            "BFS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &small_config(),
        );
        let b = run_campaign(
            "BFS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &small_config(),
        );
        assert_eq!(a.runtimes_s, b.runtimes_s);
        let other_seed = CampaignConfig {
            seed: 43,
            ..small_config()
        };
        let c = run_campaign(
            "BFS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &other_seed,
        );
        assert_ne!(a.runtimes_s, c.runtimes_s);
    }

    #[test]
    fn parallel_campaign_matches_sequential_reference() {
        let report = pooled_report(WorkloadKind::SuperLu);
        for policy in [
            SchedulingPolicy::RandomBaseline,
            SchedulingPolicy::InterferenceAware,
        ] {
            let par = run_campaign("SuperLU", &report, policy, &small_config());
            let seq = run_campaign_sequential("SuperLU", &report, policy, &small_config());
            assert_eq!(
                par.runtimes_s, seq.runtimes_s,
                "parallel and sequential campaigns must agree bit for bit"
            );
            assert_eq!(par.mean_s, seq.mean_s);
        }
    }

    #[test]
    fn campaign_trials_use_multiple_threads() {
        // Test-only membership set; never iterated.
        #[allow(clippy::disallowed_types)]
        use std::collections::HashSet;
        use std::sync::Mutex;
        assert!(
            rayon::current_num_threads() >= 2,
            "thread pool must have at least two workers"
        );
        // Observe the worker threads the campaign machinery actually uses by
        // running the same par_iter shape the campaign runs.
        #[allow(clippy::disallowed_types)]
        let seen: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
        let report = pooled_report(WorkloadKind::Hpl);
        let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
        let config = small_config();
        let _runtimes: Vec<f64> = (0..config.runs)
            .into_par_iter()
            .map(|trial| {
                seen.lock()
                    .unwrap()
                    .insert(format!("{:?}", std::thread::current().id()));
                super::trial_runtime(
                    &report,
                    SchedulingPolicy::RandomBaseline,
                    &config,
                    idle,
                    trial,
                )
            })
            .collect();
        assert!(
            seen.lock().unwrap().len() > 1,
            "campaign trials must execute on more than one thread"
        );
    }

    #[test]
    fn runtimes_are_never_faster_than_idle() {
        let report = pooled_report(WorkloadKind::NekRs);
        let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
        let campaign = run_campaign(
            "NekRS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &small_config(),
        );
        assert_eq!(campaign.runtimes_s.len(), 30);
        for &t in &campaign.runtimes_s {
            assert!(t >= idle * 0.999, "interference cannot speed a job up");
        }
        assert!(campaign.summary.min >= idle * 0.999);
        assert!(campaign.mean_s >= campaign.summary.min);
    }
}
