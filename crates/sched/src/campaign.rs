//! Monte Carlo scheduling campaigns.
//!
//! A campaign re-evaluates one workload's profiled run under many randomly
//! drawn interference schedules (one per simulated job placement) and collects
//! the runtime distribution. Cache behaviour and data placement are fixed by
//! the profiling run; only the timing reacts to the co-runners, so each
//! trial is a cheap re-timing of the recorded timeline
//! (see [`dismem_sim::RunReport::retime`]).

use crate::policy::SchedulingPolicy;
use dismem_analysis::{five_number_summary, mean, FiveNumberSummary};
use dismem_sim::{InterferenceProfile, RunReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Campaign configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of runs per workload per policy (the paper uses 100).
    pub runs: usize,
    /// Number of interference epochs per run (the paper re-draws the level of
    /// interference every 60 s; with the simulator's scaled-down runtimes the
    /// epoch length is expressed as a fraction of the idle runtime instead).
    pub epochs_per_run: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            runs: 100,
            epochs_per_run: 8,
            seed: 0xD15C,
        }
    }
}

/// Result of one campaign (one workload under one policy).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Workload name.
    pub workload: String,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Runtime of every trial, in seconds.
    pub runtimes_s: Vec<f64>,
    /// Five-number summary of the runtimes.
    pub summary: FiveNumberSummary,
    /// Mean runtime.
    pub mean_s: f64,
}

/// Side-by-side comparison of the two policies for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Workload name.
    pub workload: String,
    /// Baseline (interference-oblivious) campaign.
    pub baseline: CampaignResult,
    /// Interference-aware campaign.
    pub aware: CampaignResult,
}

impl PolicyComparison {
    /// Mean speedup of the interference-aware policy over the baseline, in
    /// percent (the paper reports 0–4 % depending on the workload).
    pub fn mean_speedup_percent(&self) -> f64 {
        if self.aware.mean_s == 0.0 {
            return 0.0;
        }
        (self.baseline.mean_s / self.aware.mean_s - 1.0) * 100.0
    }

    /// Reduction of the 75th-percentile runtime in percent (the paper's
    /// variability metric).
    pub fn p75_reduction_percent(&self) -> f64 {
        if self.baseline.summary.q3 == 0.0 {
            return 0.0;
        }
        (1.0 - self.aware.summary.q3 / self.baseline.summary.q3) * 100.0
    }
}

fn schedule_for_trial(
    rng: &mut StdRng,
    idle_runtime_s: f64,
    epochs: usize,
    max_loi: f64,
) -> InterferenceProfile {
    // Epochs are sized so the whole (possibly slowed-down) run sees several
    // interference changes, as in the paper's 60-second epochs.
    let epoch_len = idle_runtime_s * 2.0 / epochs as f64;
    let epochs: Vec<(f64, f64)> = (0..epochs.max(1))
        .map(|i| (i as f64 * epoch_len, rng.gen_range(0.0..=max_loi)))
        .collect();
    InterferenceProfile::schedule(epochs)
}

/// Runtime of one Monte Carlo trial. Each trial derives its RNG from the
/// campaign seed and the trial index alone, so trials are order-independent
/// and a campaign yields identical results however its trials are scheduled.
fn trial_runtime(
    report: &RunReport,
    policy: SchedulingPolicy,
    config: &CampaignConfig,
    idle_runtime_s: f64,
    trial: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_add(trial as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ policy.max_loi().to_bits(),
    );
    let schedule = schedule_for_trial(
        &mut rng,
        idle_runtime_s,
        config.epochs_per_run,
        policy.max_loi(),
    );
    report.retime(&schedule).total_runtime_s
}

fn campaign_result(
    workload_name: &str,
    policy: SchedulingPolicy,
    runtimes_s: Vec<f64>,
) -> CampaignResult {
    let summary = five_number_summary(&runtimes_s);
    let mean_s = mean(&runtimes_s);
    CampaignResult {
        workload: workload_name.to_string(),
        policy,
        runtimes_s,
        summary,
        mean_s,
    }
}

/// Runs a campaign for one workload (represented by its profiled pooled run)
/// under one policy. Trials execute concurrently on the thread pool; results
/// are identical to [`run_campaign_sequential`] for the same inputs.
pub fn run_campaign(
    workload_name: &str,
    report: &RunReport,
    policy: SchedulingPolicy,
    config: &CampaignConfig,
) -> CampaignResult {
    assert!(config.runs > 0 && config.epochs_per_run > 0);
    let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
    let runtimes_s: Vec<f64> = (0..config.runs)
        .into_par_iter()
        .map(|trial| trial_runtime(report, policy, config, idle, trial))
        .collect();
    campaign_result(workload_name, policy, runtimes_s)
}

/// Single-threaded reference implementation of [`run_campaign`], kept for
/// the determinism tests (parallel and sequential execution must agree bit
/// for bit) and for callers that want to avoid spawning workers.
pub fn run_campaign_sequential(
    workload_name: &str,
    report: &RunReport,
    policy: SchedulingPolicy,
    config: &CampaignConfig,
) -> CampaignResult {
    assert!(config.runs > 0 && config.epochs_per_run > 0);
    let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
    let runtimes_s: Vec<f64> = (0..config.runs)
        .map(|trial| trial_runtime(report, policy, config, idle, trial))
        .collect();
    campaign_result(workload_name, policy, runtimes_s)
}

/// Runs both policies for one workload and returns the comparison.
pub fn compare_policies(
    workload_name: &str,
    report: &RunReport,
    config: &CampaignConfig,
) -> PolicyComparison {
    PolicyComparison {
        workload: workload_name.to_string(),
        baseline: run_campaign(
            workload_name,
            report,
            SchedulingPolicy::RandomBaseline,
            config,
        ),
        aware: run_campaign(
            workload_name,
            report,
            SchedulingPolicy::InterferenceAware,
            config,
        ),
    }
}

/// [`compare_policies`] with sequential campaigns: for callers that are
/// already running one comparison per pool worker (e.g. a parallel sweep
/// over workloads), where nesting the trial fan-out would oversubscribe the
/// CPU with scoped threads. Results are identical to [`compare_policies`].
pub fn compare_policies_sequential(
    workload_name: &str,
    report: &RunReport,
    config: &CampaignConfig,
) -> PolicyComparison {
    PolicyComparison {
        workload: workload_name.to_string(),
        baseline: run_campaign_sequential(
            workload_name,
            report,
            SchedulingPolicy::RandomBaseline,
            config,
        ),
        aware: run_campaign_sequential(
            workload_name,
            report,
            SchedulingPolicy::InterferenceAware,
            config,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_profiler::{pooled_config, run_workload, RunOptions};
    use dismem_sim::MachineConfig;
    use dismem_workloads::WorkloadKind;

    fn pooled_report(kind: WorkloadKind) -> RunReport {
        let w = kind.instantiate_tiny();
        let cfg = pooled_config(&MachineConfig::test_config(), w.as_ref(), 0.5);
        run_workload(w.as_ref(), &RunOptions::new(cfg))
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            runs: 30,
            epochs_per_run: 6,
            seed: 42,
        }
    }

    #[test]
    fn aware_policy_is_no_slower_and_less_variable() {
        let report = pooled_report(WorkloadKind::Hypre);
        let cmp = compare_policies("Hypre", &report, &small_config());
        assert!(
            cmp.mean_speedup_percent() >= -0.5,
            "{}",
            cmp.mean_speedup_percent()
        );
        assert!(
            cmp.aware.summary.max <= cmp.baseline.summary.max + 1e-12,
            "worst case must not get worse"
        );
        assert!(cmp.aware.summary.range() <= cmp.baseline.summary.range() + 1e-12);
    }

    #[test]
    fn sensitive_workload_benefits_more_than_insensitive_one() {
        let hypre = compare_policies(
            "Hypre",
            &pooled_report(WorkloadKind::Hypre),
            &small_config(),
        );
        let hpl = compare_policies("HPL", &pooled_report(WorkloadKind::Hpl), &small_config());
        assert!(
            hypre.mean_speedup_percent() >= hpl.mean_speedup_percent() - 0.2,
            "Hypre {} vs HPL {}",
            hypre.mean_speedup_percent(),
            hpl.mean_speedup_percent()
        );
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let report = pooled_report(WorkloadKind::Bfs);
        let a = run_campaign(
            "BFS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &small_config(),
        );
        let b = run_campaign(
            "BFS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &small_config(),
        );
        assert_eq!(a.runtimes_s, b.runtimes_s);
        let other_seed = CampaignConfig {
            seed: 43,
            ..small_config()
        };
        let c = run_campaign(
            "BFS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &other_seed,
        );
        assert_ne!(a.runtimes_s, c.runtimes_s);
    }

    #[test]
    fn parallel_campaign_matches_sequential_reference() {
        let report = pooled_report(WorkloadKind::SuperLu);
        for policy in [
            SchedulingPolicy::RandomBaseline,
            SchedulingPolicy::InterferenceAware,
        ] {
            let par = run_campaign("SuperLU", &report, policy, &small_config());
            let seq = run_campaign_sequential("SuperLU", &report, policy, &small_config());
            assert_eq!(
                par.runtimes_s, seq.runtimes_s,
                "parallel and sequential campaigns must agree bit for bit"
            );
            assert_eq!(par.mean_s, seq.mean_s);
        }
    }

    #[test]
    fn campaign_trials_use_multiple_threads() {
        // Test-only membership set; never iterated.
        #[allow(clippy::disallowed_types)]
        use std::collections::HashSet;
        use std::sync::Mutex;
        assert!(
            rayon::current_num_threads() >= 2,
            "thread pool must have at least two workers"
        );
        // Observe the worker threads the campaign machinery actually uses by
        // running the same par_iter shape the campaign runs.
        #[allow(clippy::disallowed_types)]
        let seen: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
        let report = pooled_report(WorkloadKind::Hpl);
        let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
        let config = small_config();
        let _runtimes: Vec<f64> = (0..config.runs)
            .into_par_iter()
            .map(|trial| {
                seen.lock()
                    .unwrap()
                    .insert(format!("{:?}", std::thread::current().id()));
                super::trial_runtime(
                    &report,
                    SchedulingPolicy::RandomBaseline,
                    &config,
                    idle,
                    trial,
                )
            })
            .collect();
        assert!(
            seen.lock().unwrap().len() > 1,
            "campaign trials must execute on more than one thread"
        );
    }

    #[test]
    fn runtimes_are_never_faster_than_idle() {
        let report = pooled_report(WorkloadKind::NekRs);
        let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
        let campaign = run_campaign(
            "NekRS",
            &report,
            SchedulingPolicy::RandomBaseline,
            &small_config(),
        );
        assert_eq!(campaign.runtimes_s.len(), 30);
        for &t in &campaign.runtimes_s {
            assert!(t >= idle * 0.999, "interference cannot speed a job up");
        }
        assert!(campaign.summary.min >= idle * 0.999);
        assert!(campaign.mean_s >= campaign.summary.min);
    }
}
