//! Content-addressed warm-start cache for fleet campaigns.
//!
//! Every cell of a fleet grid begins with the same expensive step: simulate
//! the workload once under the cell's pooling configuration to obtain the
//! profiled [`RunReport`] the Monte Carlo pricing retimes. That warm-up run
//! depends only on the cell's *prefix* — workload, scale, capacity, link and
//! the machine-config digest — not on the policy or seed axes, so a grid of
//! `P policies × S seeds` re-simulates each prefix `P × S` times.
//!
//! A [`SnapshotCache`] eliminates the repetition: the first cell of a prefix
//! runs the workload on a fresh [`Machine`], snapshots the machine state via
//! [`Machine::snapshot`], and persists the snapshot to
//! `<dir>/<digest:016x>.snap` keyed by the FNV-1a digest of the prefix (the
//! same digest scheme the journal uses for spec fingerprints). Every later
//! cell sharing the prefix restores the machine with [`Machine::restore`] and
//! finishes it — bit-identical to the cold run by the snapshot round-trip
//! contract (`docs/ARCHITECTURE.md` §8, proven by the property suite).
//!
//! **Fallback semantics.** A snapshot that fails to load — truncated file,
//! foreign key digest, version mismatch, corrupt payload — never aborts the
//! campaign. The digest is poisoned for the rest of the campaign, every
//! affected cell falls back to the cold path, and the fallback is counted in
//! [`SnapshotStats`] (surfaced on [`CampaignReport`]) as the audit trail.
//! Fault injection for all of this lives in [`crate::fault`]
//! ([`SnapshotTamper`](crate::fault::SnapshotTamper)).
//!
//! [`CampaignReport`]: crate::campaign::CampaignReport

use dismem_core::{fnv1a64, CellKey};
use dismem_profiler::{run_workload, RunOptions};
use dismem_sim::{Machine, MachineConfig, MachineSnapshot, RunReport};
use dismem_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Warm-start activity counters for one campaign, reported on
/// [`CampaignReport::snapshot`](crate::campaign::CampaignReport::snapshot).
///
/// `hits + misses + fallbacks` equals the number of cells that went through a
/// cache-enabled runner; all three are zero for runners without a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Cells warm-started from a cached snapshot (in-memory or on disk).
    pub hits: u64,
    /// Cells that found no snapshot, ran the warm-up and wrote one.
    pub misses: u64,
    /// Cells that found an unusable snapshot (truncated, foreign digest,
    /// version mismatch, corrupt payload) and ran the cold path instead.
    pub fallbacks: u64,
}

/// The warm prefix of a [`CellKey`]: every axis that shapes the profiled
/// warm-up run. Policy and seed only steer the Monte Carlo pricing of the
/// already-profiled report, so they are deliberately absent — cells differing
/// only in policy/seed share one snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
struct WarmKey {
    workload: String,
    scale: String,
    capacity_permille: u32,
    link: String,
    config_digest: u64,
}

/// Digest of the warm prefix of `key` under `config` (the fully derived
/// pooled configuration the cell runs with). FNV-1a over the serialized
/// warm-key record — the journal's digest scheme, applied to the prefix.
pub fn warm_key_digest(key: &CellKey, config: &MachineConfig) -> u64 {
    let warm = WarmKey {
        workload: key.workload.clone(),
        scale: key.scale.clone(),
        capacity_permille: key.capacity_permille,
        link: key.link.clone(),
        config_digest: config.config_digest(),
    };
    let mut json = String::new();
    Serialize::serialize_json(&warm, &mut json);
    fnv1a64(json.as_bytes())
}

#[derive(Debug, Clone)]
enum Cached {
    /// A validated snapshot, restorable any number of times.
    Snapshot(Box<MachineSnapshot>),
    /// The on-disk snapshot was unusable; all cells of this prefix run cold.
    Poisoned,
}

/// A directory of content-addressed machine snapshots plus an in-memory memo,
/// shared by every cell a [`SimCellRunner`](crate::campaign::SimCellRunner)
/// executes. Interior mutability keeps [`CellRunner::run`]'s `&self` contract
/// (the fleet driver is sequential, so plain `Cell`/`RefCell` suffice).
///
/// [`CellRunner::run`]: crate::campaign::CellRunner::run
#[derive(Debug, Clone)]
pub struct SnapshotCache {
    dir: PathBuf,
    memo: RefCell<BTreeMap<u64, Cached>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    fallbacks: Cell<u64>,
}

impl SnapshotCache {
    /// Creates a cache rooted at `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<SnapshotCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotCache {
            dir,
            memo: RefCell::new(BTreeMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            fallbacks: Cell::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Activity counters accumulated so far.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            fallbacks: self.fallbacks.get(),
        }
    }

    /// Resets the activity counters (the memo is kept), so one cache can be
    /// shared across campaigns while each report counts only its own cells.
    pub fn reset_stats(&self) {
        self.hits.set(0);
        self.misses.set(0);
        self.fallbacks.set(0);
    }

    /// The snapshot file path for a warm-prefix digest.
    pub fn snapshot_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.snap"))
    }

    /// Produces the profiled report for one cell, warm-starting from the
    /// cached snapshot of the cell's warm prefix when possible.
    ///
    /// Exactly one of the three [`SnapshotStats`] counters is incremented per
    /// call; the returned report is bit-identical to
    /// `run_workload(workload, &RunOptions::new(config))` on every path.
    pub fn profiled_report(
        &self,
        key: &CellKey,
        workload: &dyn Workload,
        config: &MachineConfig,
    ) -> RunReport {
        let digest = warm_key_digest(key, config);

        // Memoized outcome from an earlier cell of this prefix. Memoized
        // snapshots were validated by `Machine::restore` when inserted, so
        // restoring again cannot fail.
        match self.memo.borrow().get(&digest) {
            Some(Cached::Snapshot(snapshot)) => {
                if let Ok(mut machine) = Machine::restore(snapshot) {
                    self.hits.set(self.hits.get() + 1);
                    return machine.finish();
                }
            }
            Some(Cached::Poisoned) => {
                self.fallbacks.set(self.fallbacks.get() + 1);
                return cold_report(workload, config);
            }
            None => {}
        }

        let path = self.snapshot_path(digest);
        if path.exists() {
            if let Ok(snapshot) = self.load_snapshot(&path, digest) {
                if let Ok(mut machine) = Machine::restore(&snapshot) {
                    self.memo
                        .borrow_mut()
                        .insert(digest, Cached::Snapshot(Box::new(snapshot)));
                    self.hits.set(self.hits.get() + 1);
                    return machine.finish();
                }
            }
            // Unusable on-disk snapshot: poison the prefix and run cold.
            self.memo.borrow_mut().insert(digest, Cached::Poisoned);
            self.fallbacks.set(self.fallbacks.get() + 1);
            return cold_report(workload, config);
        }

        // Miss: run the warm-up once, snapshot it, persist, then finish a
        // *restored* machine so hit and miss paths share one code path.
        self.misses.set(self.misses.get() + 1);
        let mut machine = warm_machine(workload, config);
        match machine.snapshot() {
            Ok(snapshot) => {
                // Persistence is best-effort: an unwritable cache directory
                // degrades to per-campaign memoization, never to an abort.
                let _ = write_atomic_bytes(&path, &snapshot.to_snapshot_bytes(digest));
                let report = match Machine::restore(&snapshot) {
                    Ok(mut restored) => restored.finish(),
                    Err(_) => machine.finish(),
                };
                self.memo
                    .borrow_mut()
                    .insert(digest, Cached::Snapshot(Box::new(snapshot)));
                report
            }
            // Unsnapshottable machine (raw policy box, recorder): the warm
            // run itself is still valid — finish it directly.
            Err(_) => machine.finish(),
        }
    }

    fn load_snapshot(
        &self,
        path: &Path,
        digest: u64,
    ) -> Result<MachineSnapshot, dismem_sim::SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| dismem_sim::SnapshotError::Corrupt(format!("{}: {e}", path.display())))?;
        MachineSnapshot::from_snapshot_bytes(&bytes, digest)
    }
}

/// The cold path: exactly [`run_workload`] under idle interference, shared by
/// fallbacks and cache-less runners so warm/cold equivalence is against one
/// reference implementation.
fn cold_report(workload: &dyn Workload, config: &MachineConfig) -> RunReport {
    run_workload(workload, &RunOptions::new(config.clone()))
}

/// The warm prefix of [`run_workload`]: everything up to (not including)
/// `Machine::finish`. Must mirror `run_workload` exactly — the snapshot taken
/// here stands in for the cold run's machine state at the same point.
fn warm_machine(workload: &dyn Workload, config: &MachineConfig) -> Machine {
    let options = RunOptions::new(config.clone());
    let mut config = options.config.clone();
    config.prefetch.enabled = options.prefetch;
    let mut machine = Machine::new(config);
    machine.set_interference(options.interference.clone());
    workload.run(&mut machine);
    machine
}

/// Writes `bytes` to `path` via a sibling temp file and atomic rename — the
/// journal's durability discipline, for binary content.
fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::WorkloadKind;

    fn cell(policy: &str, seed: u64) -> CellKey {
        CellKey {
            workload: "Hypre".to_string(),
            scale: "tiny".to_string(),
            policy: policy.to_string(),
            capacity_permille: 500,
            link: "upi".to_string(),
            seed,
        }
    }

    fn pooled() -> (Box<dyn Workload>, MachineConfig) {
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let cfg = dismem_profiler::pooled_config(&MachineConfig::test_config(), w.as_ref(), 0.5);
        (w, cfg)
    }

    #[test]
    fn digest_ignores_policy_and_seed_but_not_capacity() {
        let (_, cfg) = pooled();
        let a = warm_key_digest(&cell("baseline", 1), &cfg);
        let b = warm_key_digest(&cell("aware", 99), &cfg);
        assert_eq!(a, b, "policy/seed are not part of the warm prefix");
        let mut narrower = cell("baseline", 1);
        narrower.capacity_permille = 250;
        assert_ne!(warm_key_digest(&narrower, &cfg), a);
    }

    #[test]
    fn warm_report_is_bit_identical_to_cold_across_hit_and_miss() {
        let tmp = std::env::temp_dir().join(format!("dismem-snapcache-{}", std::process::id()));
        let cache = SnapshotCache::new(&tmp).unwrap();
        let (w, cfg) = pooled();
        let cold = cold_report(w.as_ref(), &cfg);

        let miss = cache.profiled_report(&cell("baseline", 1), w.as_ref(), &cfg);
        assert_eq!(miss, cold, "miss path (snapshot + restore) must equal cold");
        let hit = cache.profiled_report(&cell("aware", 2), w.as_ref(), &cfg);
        assert_eq!(hit, cold, "hit path (restore from memo) must equal cold");

        // A fresh cache over the same directory exercises the disk path.
        let cache2 = SnapshotCache::new(&tmp).unwrap();
        let disk_hit = cache2.profiled_report(&cell("baseline", 3), w.as_ref(), &cfg);
        assert_eq!(disk_hit, cold, "disk hit must equal cold");
        assert_eq!(
            cache2.stats(),
            SnapshotStats {
                hits: 1,
                misses: 0,
                fallbacks: 0
            }
        );
        assert_eq!(
            cache.stats(),
            SnapshotStats {
                hits: 1,
                misses: 1,
                fallbacks: 0
            }
        );
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_cold_and_poisons_the_prefix() {
        let tmp = std::env::temp_dir().join(format!("dismem-snappoison-{}", std::process::id()));
        let cache = SnapshotCache::new(&tmp).unwrap();
        let (w, cfg) = pooled();
        let digest = warm_key_digest(&cell("baseline", 1), &cfg);
        std::fs::write(cache.snapshot_path(digest), b"not a snapshot").unwrap();

        let cold = cold_report(w.as_ref(), &cfg);
        let a = cache.profiled_report(&cell("baseline", 1), w.as_ref(), &cfg);
        let b = cache.profiled_report(&cell("aware", 2), w.as_ref(), &cfg);
        assert_eq!(a, cold);
        assert_eq!(b, cold);
        assert_eq!(
            cache.stats(),
            SnapshotStats {
                hits: 0,
                misses: 0,
                fallbacks: 2
            }
        );
        std::fs::remove_dir_all(&tmp).ok();
    }
}
