//! Crash-consistent results journal for fleet campaigns.
//!
//! The journal is a JSON-lines file: one [`JournalRecord`] per completed (or
//! quarantined) cell. Appends go through write-to-temp + atomic rename, so a
//! kill at any instant leaves either the previous journal or the new one on
//! disk — never a half-written middle. The only torn state an external crash
//! can produce (non-atomic filesystems, partial copies) is a truncated final
//! line, which [`load_journal`] tolerates; corruption anywhere earlier is an
//! error, because it means records that were once durable have been lost.
//!
//! Records are written with the vendored serde stack and read back with the
//! hand-rolled [`serde_json::read`] parser. Floats survive the round trip
//! bit-for-bit (shortest-round-trip formatting, correctly-rounded parsing),
//! which is what lets a resumed campaign reproduce the uninterrupted report
//! byte-identically.

use dismem_core::CellKey;
use serde::Serialize;
use serde_json::JsonValue;
use std::fmt;
use std::path::{Path, PathBuf};

/// Per-cell metrics persisted in the journal: the five-number summary and
/// mean of the cell's Monte Carlo runtime distribution, plus the placement's
/// remote-access ratio.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellMetrics {
    /// Number of Monte Carlo trials behind the summary.
    pub trials: u32,
    /// Mean trial runtime in seconds.
    pub mean_runtime_s: f64,
    /// Minimum trial runtime in seconds.
    pub min_runtime_s: f64,
    /// First-quartile trial runtime in seconds.
    pub q1_runtime_s: f64,
    /// Median trial runtime in seconds.
    pub median_runtime_s: f64,
    /// Third-quartile trial runtime in seconds (the paper's variability
    /// metric).
    pub q3_runtime_s: f64,
    /// Maximum trial runtime in seconds.
    pub max_runtime_s: f64,
    /// Fraction of demand lines served from the pool tier.
    pub remote_access_ratio: f64,
}

/// One journal line: the outcome of one cell under one spec digest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JournalRecord {
    /// Hex digest of the campaign spec (grid axes + machine config) the cell
    /// ran under. Records with a foreign digest are never replayed.
    pub digest: String,
    /// The cell's identity.
    pub key: CellKey,
    /// Attempts consumed (1 for a first-try success).
    pub attempts: u32,
    /// `"ok"` or `"failed"` (quarantined after exhausting retries).
    pub status: String,
    /// Metrics for an `"ok"` record; `None` for a quarantined cell.
    pub metrics: Option<CellMetrics>,
    /// Panic or runner error message for a `"failed"` record.
    pub error: Option<String>,
}

impl JournalRecord {
    /// True when the record carries a successful cell result.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Parses one journal line back into a record.
    pub fn from_json(value: &JsonValue) -> Result<JournalRecord, String> {
        let digest = value
            .get("digest")
            .and_then(|v| v.as_str())
            .ok_or("missing digest")?
            .to_string();
        let key = parse_key(value.get("key").ok_or("missing key")?)?;
        let attempts = value
            .get("attempts")
            .and_then(|v| v.as_u64())
            .ok_or("missing attempts")? as u32;
        let status = value
            .get("status")
            .and_then(|v| v.as_str())
            .ok_or("missing status")?
            .to_string();
        if status != "ok" && status != "failed" {
            return Err(format!("unknown status `{status}`"));
        }
        let metrics = match value.get("metrics") {
            None | Some(JsonValue::Null) => None,
            Some(m) => Some(parse_metrics(m)?),
        };
        let error = match value.get("error") {
            None | Some(JsonValue::Null) => None,
            Some(e) => Some(e.as_str().ok_or("error must be a string")?.to_string()),
        };
        if status == "ok" && metrics.is_none() {
            return Err("ok record without metrics".to_string());
        }
        if status == "failed" && error.is_none() {
            return Err("failed record without error message".to_string());
        }
        Ok(JournalRecord {
            digest,
            key,
            attempts,
            status,
            metrics,
            error,
        })
    }
}

fn parse_key(value: &JsonValue) -> Result<CellKey, String> {
    let field_str = |name: &str| {
        value
            .get(name)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or(format!("key missing field `{name}`"))
    };
    Ok(CellKey {
        workload: field_str("workload")?,
        scale: field_str("scale")?,
        policy: field_str("policy")?,
        capacity_permille: value
            .get("capacity_permille")
            .and_then(|v| v.as_u64())
            .ok_or("key missing field `capacity_permille`")? as u32,
        link: field_str("link")?,
        seed: value
            .get("seed")
            .and_then(|v| v.as_u64())
            .ok_or("key missing field `seed`")?,
    })
}

fn parse_metrics(value: &JsonValue) -> Result<CellMetrics, String> {
    let field = |name: &str| {
        value
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or(format!("metrics missing field `{name}`"))
    };
    Ok(CellMetrics {
        trials: value
            .get("trials")
            .and_then(|v| v.as_u64())
            .ok_or("metrics missing field `trials`")? as u32,
        mean_runtime_s: field("mean_runtime_s")?,
        min_runtime_s: field("min_runtime_s")?,
        q1_runtime_s: field("q1_runtime_s")?,
        median_runtime_s: field("median_runtime_s")?,
        q3_runtime_s: field("q3_runtime_s")?,
        max_runtime_s: field("max_runtime_s")?,
        remote_access_ratio: field("remote_access_ratio")?,
    })
}

/// Journal failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// Filesystem error (path + OS message).
    Io(String),
    /// A record before the final line failed to parse: durable history has
    /// been damaged, which resume must not paper over.
    Corrupt {
        /// 1-based line number of the damaged record.
        line: usize,
        /// Parser or validation message.
        message: String,
    },
    /// Two records with the same cell id and the same spec digest.
    DuplicateKey(String),
    /// A shard journal carries records under a different spec digest than the
    /// merge expects.
    DigestMismatch {
        /// Cell id of the offending record.
        id: String,
        /// Digest found in the record.
        found: String,
        /// Digest the merge was asked to enforce.
        expected: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O error: {msg}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            JournalError::DuplicateKey(id) => {
                write!(f, "duplicate journal record for cell {id}")
            }
            JournalError::DigestMismatch {
                id,
                found,
                expected,
            } => write!(
                f,
                "cell {id} journaled under digest {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// A parsed journal: the intact records plus whether a torn trailing line was
/// dropped.
#[derive(Debug, Clone)]
pub struct LoadedJournal {
    /// Records in file order.
    pub records: Vec<JournalRecord>,
    /// True when the final line failed to parse and was discarded (the one
    /// corruption an external crash can legitimately produce).
    pub torn_tail: bool,
}

/// Reads a journal file. A missing file is an empty journal. The final line
/// may be torn (truncated mid-record) and is then dropped; a malformed line
/// anywhere earlier is [`JournalError::Corrupt`].
pub fn load_journal(path: &Path) -> Result<LoadedJournal, JournalError> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedJournal {
                records: Vec::new(),
                torn_tail: false,
            })
        }
        Err(e) => return Err(JournalError::Io(format!("{}: {e}", path.display()))),
    };
    let lines: Vec<&str> = content
        .lines()
        .filter(|line| !line.trim().is_empty())
        .collect();
    let mut records = Vec::with_capacity(lines.len());
    let mut torn_tail = false;
    for (i, line) in lines.iter().enumerate() {
        let parsed = serde_json::parse_value(line)
            .map_err(|e| e.to_string())
            .and_then(|v| JournalRecord::from_json(&v));
        match parsed {
            Ok(record) => records.push(record),
            // Only the very last line may be torn.
            Err(_) if i + 1 == lines.len() => torn_tail = true,
            Err(message) => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(LoadedJournal { records, torn_tail })
}

/// Appends records to a journal with atomic whole-file replacement.
///
/// The writer keeps the journal's full text in memory; every [`append`]
/// writes `text + new line` to `<path>.tmp` and renames it over the journal.
/// Rename is atomic on POSIX filesystems, so a kill mid-append leaves the
/// previous journal intact — prior records can never be corrupted by a crash
/// of this process.
///
/// [`append`]: JournalWriter::append
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    content: String,
    records: u64,
}

impl JournalWriter {
    /// Opens a journal for appending, loading any existing intact content
    /// first (a torn trailing line is dropped here exactly as in
    /// [`load_journal`], so the next append heals it).
    pub fn open(path: &Path) -> Result<JournalWriter, JournalError> {
        let loaded = load_journal(path)?;
        let mut content = String::new();
        for record in &loaded.records {
            push_line(&mut content, record)?;
        }
        Ok(JournalWriter {
            path: path.to_path_buf(),
            content,
            records: loaded.records.len() as u64,
        })
    }

    /// Number of records currently durable in the journal.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Appends one record durably (write temp, rename over the journal).
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let mut next = self.content.clone();
        push_line(&mut next, record)?;
        write_atomic(&self.path, &next)?;
        self.content = next;
        self.records += 1;
        Ok(())
    }
}

fn push_line(out: &mut String, record: &JournalRecord) -> Result<(), JournalError> {
    let line = serde_json::to_string(record)
        .map_err(|e| JournalError::Io(format!("serialize record: {e}")))?;
    out.push_str(&line);
    out.push('\n');
    Ok(())
}

/// Writes `content` to `path` via a sibling temp file and atomic rename.
pub(crate) fn write_atomic(path: &Path, content: &str) -> Result<(), JournalError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, content)
        .map_err(|e| JournalError::Io(format!("{}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| JournalError::Io(format!("{} -> {}: {e}", tmp.display(), path.display())))
}

/// Merges shard journals into one canonical journal at `out_path`.
///
/// Every record must carry `expected_digest`; records are sorted by cell id
/// (total order) and a cell id appearing in more than one shard — or twice in
/// one — is [`JournalError::DuplicateKey`]. Torn trailing lines in shard
/// journals are tolerated (the affected cell is simply absent and a resume of
/// the merged journal re-runs it). The merged journal is written with the
/// same temp + rename discipline as the writer, and is exactly what a
/// sequential un-sharded campaign would have journaled, record for record.
pub fn merge_shard_journals(
    shard_paths: &[PathBuf],
    out_path: &Path,
    expected_digest: &str,
) -> Result<u64, JournalError> {
    let mut by_id: Vec<(String, JournalRecord)> = Vec::new();
    for path in shard_paths {
        let loaded = load_journal(path)?;
        for record in loaded.records {
            if record.digest != expected_digest {
                return Err(JournalError::DigestMismatch {
                    id: record.key.id(),
                    found: record.digest,
                    expected: expected_digest.to_string(),
                });
            }
            by_id.push((record.key.id(), record));
        }
    }
    by_id.sort_by(|a, b| a.0.cmp(&b.0));
    for pair in by_id.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(JournalError::DuplicateKey(pair[0].0.clone()));
        }
    }
    let mut content = String::new();
    for (_, record) in &by_id {
        push_line(&mut content, record)?;
    }
    write_atomic(out_path, &content)?;
    Ok(by_id.len() as u64)
}
