//! Co-location policies.

use serde::{Deserialize, Serialize};

/// Scheduling policy controlling how much interference co-located jobs may
/// place on the shared memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Interference-oblivious placement: co-runners inject 0–50 % LoI.
    RandomBaseline,
    /// Interference-aware placement: heavy interferers are never co-located,
    /// so co-runners inject only 0–20 % LoI.
    InterferenceAware,
}

impl SchedulingPolicy {
    /// Both policies, baseline first.
    pub fn all() -> [SchedulingPolicy; 2] {
        [
            SchedulingPolicy::RandomBaseline,
            SchedulingPolicy::InterferenceAware,
        ]
    }

    /// Upper bound of the background LoI distribution (fraction of peak raw
    /// link traffic).
    pub fn max_loi(self) -> f64 {
        match self {
            SchedulingPolicy::RandomBaseline => 0.50,
            SchedulingPolicy::InterferenceAware => 0.20,
        }
    }

    /// Display label used in Figure 13.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::RandomBaseline => "Baseline",
            SchedulingPolicy::InterferenceAware => "I-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_policy_caps_interference_lower() {
        assert!(
            SchedulingPolicy::InterferenceAware.max_loi()
                < SchedulingPolicy::RandomBaseline.max_loi()
        );
        assert_eq!(SchedulingPolicy::all().len(), 2);
        assert_eq!(SchedulingPolicy::RandomBaseline.label(), "Baseline");
        assert_eq!(SchedulingPolicy::InterferenceAware.label(), "I-aware");
    }
}
