//! Fault-injection suite for the fleet-campaign crash-consistency contract.
//!
//! Every test here asserts *full-report bit-identity*: the serialized JSON of
//! a resumed / sharded / quarantined campaign must equal the uninterrupted
//! sequential reference byte for byte. That is the strongest form of the
//! contract — it proves the journal round-trip (including floats), the
//! deterministic work queue, and the id-sorted report construction all agree.

use dismem_core::{fnv1a64, CellKey};
use dismem_sched::{
    load_journal, merge_shard_journals, resume_campaign, run_fleet_campaign, CampaignError,
    CampaignReport, CellMetrics, CellRunner, FaultPlan, FleetSpec, JournalError, Shard,
    SimCellRunner, SnapshotCache, SnapshotStats, SnapshotTamper,
};
use dismem_sim::MachineConfig;
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dismem-resilience-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

/// Cheap, fully deterministic runner: metrics are pure functions of the cell
/// id, with non-trivial fractional parts so the float round-trip is actually
/// exercised (an integral value would serialize trivially).
struct SyntheticRunner;

impl CellRunner for SyntheticRunner {
    fn run(&self, key: &CellKey) -> Result<CellMetrics, String> {
        let h = fnv1a64(key.id().as_bytes());
        let base = 1.0 + (h % 1000) as f64 / 997.0;
        Ok(CellMetrics {
            trials: 8,
            mean_runtime_s: base * 1.234_567_890_123_456_7,
            min_runtime_s: base,
            q1_runtime_s: base * 1.1,
            median_runtime_s: base * 1.2,
            q3_runtime_s: base * 1.3,
            max_runtime_s: base * 1.7,
            remote_access_ratio: (h % 997) as f64 / 997.0,
        })
    }
}

/// 3 workloads × 2 policies × 2 capacities × 2 seeds = 24 cells.
fn spec() -> FleetSpec {
    FleetSpec {
        workloads: vec!["A".to_string(), "B".to_string(), "C".to_string()],
        scales: vec!["tiny".to_string()],
        policies: vec!["baseline".to_string(), "aware".to_string()],
        capacities_permille: vec![250, 750],
        links: vec!["upi".to_string()],
        seeds: vec![1, 2],
        max_attempts: 3,
        config_digest: 0xABCD,
    }
}

const CELLS: u64 = 24;

fn json(report: &CampaignReport) -> String {
    serde_json::to_string(report).expect("serialize report")
}

/// Serialized form with the resume-diagnostic fields cleared: a resume that
/// legitimately dropped records (torn tail, foreign digests) reports those
/// drops — and a warm-started campaign reports its snapshot-cache activity —
/// so comparisons against a fresh-run reference normalize them away and
/// assert the diagnostics explicitly instead.
fn json_normalized(report: &CampaignReport) -> String {
    let mut normalized = report.clone();
    normalized.rejected_records = 0;
    normalized.dropped_torn_tail = false;
    normalized.snapshot = SnapshotStats::default();
    json(&normalized)
}

/// The uninterrupted sequential reference report and its serialized form.
fn reference(name: &str) -> String {
    let path = temp_journal(&format!("{name}-reference"));
    let report = run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
        .expect("reference run");
    assert_eq!(report.completed.len() as u64, CELLS);
    assert!(report.failed_cells.is_empty());
    json(&report)
}

// ---------------------------------------------------------------------------
// Kill and resume.
// ---------------------------------------------------------------------------

#[test]
fn resume_after_kill_is_bit_identical_to_uninterrupted_run() {
    let expected = reference("kill-fixed");
    let path = temp_journal("kill-fixed");
    let killed = run_fleet_campaign(
        &spec(),
        &SyntheticRunner,
        &path,
        None,
        &FaultPlan::kill_after(7),
    );
    match killed {
        Err(CampaignError::Interrupted { cells_journaled }) => assert_eq!(cells_journaled, 7),
        other => panic!("expected Interrupted, got {other:?}"),
    }
    let (report, stats) =
        resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
            .expect("resume");
    assert_eq!(stats.replayed, 7);
    assert_eq!(stats.reran, CELLS - 7);
    assert!(!stats.torn_tail);
    assert_eq!(
        json(&report),
        expected,
        "resumed report must be bit-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn resume_after_random_kill_matches_reference(k in 1u64..CELLS) {
        let expected = reference(&format!("kill-prop-{k}"));
        let path = temp_journal(&format!("kill-prop-{k}"));
        let killed = run_fleet_campaign(
            &spec(),
            &SyntheticRunner,
            &path,
            None,
            &FaultPlan::kill_after(k),
        );
        prop_assert!(matches!(
            killed,
            Err(CampaignError::Interrupted { cells_journaled }) if cells_journaled == k
        ));
        let (report, stats) =
            resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
                .expect("resume");
        prop_assert_eq!(stats.replayed, k);
        prop_assert_eq!(stats.reran, CELLS - k);
        prop_assert_eq!(json(&report), expected);
    }
}

#[test]
fn resume_is_idempotent() {
    let path = temp_journal("idempotent");
    let report = run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
        .expect("fresh run");
    let (again, stats) =
        resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
            .expect("resume of complete journal");
    assert_eq!(stats.reran, 0);
    assert_eq!(stats.replayed, CELLS);
    assert_eq!(json(&again), json(&report));
}

#[test]
fn fresh_run_refuses_a_nonempty_journal() {
    let path = temp_journal("nonempty");
    run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
        .expect("fresh run");
    let second = run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none());
    assert!(matches!(
        second,
        Err(CampaignError::JournalNotEmpty { records: CELLS })
    ));
}

// ---------------------------------------------------------------------------
// Torn journals.
// ---------------------------------------------------------------------------

#[test]
fn torn_trailing_record_is_tolerated_and_rerun() {
    let expected = reference("torn-tail");
    let path = temp_journal("torn-tail");
    let killed = run_fleet_campaign(
        &spec(),
        &SyntheticRunner,
        &path,
        None,
        &FaultPlan::kill_after(5).with_torn_final_record(),
    );
    assert!(matches!(killed, Err(CampaignError::Interrupted { .. })));
    let loaded = load_journal(&path).expect("load torn journal");
    assert!(loaded.torn_tail, "final line must be torn");
    assert_eq!(loaded.records.len(), 4, "only the intact records survive");
    let (report, stats) =
        resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
            .expect("resume over torn tail");
    assert!(stats.torn_tail);
    assert_eq!(stats.replayed, 4);
    assert_eq!(stats.reran, CELLS - 4, "torn cell must re-run");
    assert!(
        report.dropped_torn_tail,
        "report must surface the torn tail"
    );
    assert_eq!(report.rejected_records, 0);
    assert_eq!(json_normalized(&report), expected);
}

#[test]
fn corruption_before_the_final_line_is_an_error() {
    let path = temp_journal("torn-middle");
    let killed = run_fleet_campaign(
        &spec(),
        &SyntheticRunner,
        &path,
        None,
        &FaultPlan::kill_after(6),
    );
    assert!(matches!(killed, Err(CampaignError::Interrupted { .. })));
    // Damage line 3 of 6: durable history has been lost, resume must refuse.
    let content = std::fs::read_to_string(&path).expect("read journal");
    let mut lines: Vec<&str> = content.lines().collect();
    let half = &lines[2][..lines[2].len() / 2];
    lines[2] = half;
    std::fs::write(&path, lines.join("\n")).expect("corrupt journal");
    let resumed = resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none());
    match resumed {
        Err(CampaignError::Journal(JournalError::Corrupt { line, .. })) => assert_eq!(line, 3),
        other => panic!("expected Corrupt at line 3, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Digest mismatches.
// ---------------------------------------------------------------------------

#[test]
fn foreign_digest_records_are_rejected_and_their_cells_rerun() {
    let path = temp_journal("digest");
    run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
        .expect("run under config A");
    // Same grid, different machine config: every journaled record is foreign.
    let changed = FleetSpec {
        config_digest: 0xEF01,
        ..spec()
    };
    let (report, stats) =
        resume_campaign(&changed, &SyntheticRunner, &path, None, &FaultPlan::none())
            .expect("resume under config B");
    assert_eq!(stats.digest_rejected, CELLS);
    assert_eq!(stats.replayed, 0);
    assert_eq!(stats.reran, CELLS);
    assert_eq!(report.spec_digest, changed.digest_hex());
    assert_eq!(
        report.rejected_records, CELLS,
        "dropped foreign records must be surfaced"
    );
    assert!(!report.dropped_torn_tail);
    // The journal now holds both generations; a further resume under config B
    // replays only its own records and runs nothing.
    let (again, stats) =
        resume_campaign(&changed, &SyntheticRunner, &path, None, &FaultPlan::none())
            .expect("second resume under config B");
    assert_eq!(stats.digest_rejected, CELLS);
    assert_eq!(stats.replayed, CELLS);
    assert_eq!(stats.reran, 0);
    assert_eq!(json(&again), json(&report));
}

#[test]
fn duplicate_records_for_one_cell_are_rejected() {
    let path = temp_journal("duplicate");
    run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
        .expect("fresh run");
    // Duplicate the first line, as a buggy external merge would.
    let content = std::fs::read_to_string(&path).expect("read journal");
    let first = content.lines().next().expect("first line").to_string();
    std::fs::write(&path, format!("{first}\n{content}")).expect("duplicate record");
    let resumed = resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none());
    assert!(matches!(
        resumed,
        Err(CampaignError::Journal(JournalError::DuplicateKey(_)))
    ));
}

// ---------------------------------------------------------------------------
// Poison: retry then quarantine.
// ---------------------------------------------------------------------------

#[test]
fn permanently_poisoned_cell_is_quarantined_not_fatal() {
    let path = temp_journal("poison-forever");
    let victim = spec().cells()[5].id();
    let fault = FaultPlan::none().with_poison_forever(&victim);
    let report = run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &fault)
        .expect("campaign must survive the poisoned cell");
    assert_eq!(report.completed.len() as u64, CELLS - 1);
    assert_eq!(report.failed_cells.len(), 1);
    let failed = &report.failed_cells[0];
    assert_eq!(failed.key.id(), victim);
    assert_eq!(failed.attempts, 3, "all attempts must be consumed");
    assert!(
        failed.error.contains("poisoned cell"),
        "panic message must be preserved: {}",
        failed.error
    );
    assert_eq!(report.total_cells, CELLS);
    // The quarantine is durable: a resume replays it without re-running.
    let (again, stats) =
        resume_campaign(&spec(), &SyntheticRunner, &path, None, &FaultPlan::none())
            .expect("resume");
    assert_eq!(stats.reran, 0);
    assert_eq!(json(&again), json(&report));
}

#[test]
fn transiently_poisoned_cell_heals_on_retry() {
    let path = temp_journal("poison-once");
    let victim = spec().cells()[0].id();
    let fault = FaultPlan::none().with_poison(&victim, 1);
    let report = run_fleet_campaign(&spec(), &SyntheticRunner, &path, None, &fault)
        .expect("campaign with healing cell");
    assert!(report.failed_cells.is_empty());
    let healed = report
        .completed
        .iter()
        .find(|c| c.key.id() == victim)
        .expect("healed cell present");
    assert_eq!(healed.attempts, 2, "first attempt panicked, second healed");
    assert!(report
        .completed
        .iter()
        .filter(|c| c.key.id() != victim)
        .all(|c| c.attempts == 1));
}

// ---------------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------------

#[test]
fn shard_partition_is_disjoint_and_covers_the_grid() {
    let cells = spec().cells();
    for count in [1u32, 2, 3, 5] {
        let mut owned = 0usize;
        for i in 0..cells.len() {
            let owners = (0..count).filter(|&s| Shard::new(s, count).owns(i)).count();
            assert_eq!(owners, 1, "cell {i} must have exactly one owner");
            owned += 1;
        }
        assert_eq!(owned, cells.len());
    }
    assert_eq!(Shard::parse("2/5"), Ok(Shard { index: 2, count: 5 }));
    assert!(Shard::parse("5/5").is_err());
    assert!(Shard::parse("0/0").is_err());
    assert!(Shard::parse("nope").is_err());
}

#[test]
fn merged_shards_are_bit_identical_to_the_sequential_reference() {
    let expected = reference("shards");
    let shard_count = 3u32;
    let mut shard_paths = Vec::new();
    for index in 0..shard_count {
        let path = temp_journal(&format!("shards-{index}"));
        let report = run_fleet_campaign(
            &spec(),
            &SyntheticRunner,
            &path,
            Some(Shard::new(index, shard_count)),
            &FaultPlan::none(),
        )
        .expect("shard run");
        assert_eq!(
            report.completed.len() as u64,
            CELLS / u64::from(shard_count)
        );
        shard_paths.push(path);
    }
    let merged_path = temp_journal("shards-merged");
    let merged =
        merge_shard_journals(&shard_paths, &merged_path, &spec().digest_hex()).expect("merge");
    assert_eq!(merged, CELLS);
    let (report, stats) = resume_campaign(
        &spec(),
        &SyntheticRunner,
        &merged_path,
        None,
        &FaultPlan::none(),
    )
    .expect("report from merged journal");
    assert_eq!(stats.reran, 0, "merged shards must cover the whole grid");
    assert_eq!(stats.replayed, CELLS);
    assert_eq!(json(&report), expected, "shard merge must equal sequential");
}

#[test]
fn merge_rejects_overlapping_shards_and_foreign_digests() {
    let path_a = temp_journal("merge-dup-a");
    run_fleet_campaign(
        &spec(),
        &SyntheticRunner,
        &path_a,
        Some(Shard::new(0, 2)),
        &FaultPlan::none(),
    )
    .expect("shard 0");
    // The same shard journal twice: every key duplicates.
    let out = temp_journal("merge-dup-out");
    let dup = merge_shard_journals(
        &[path_a.clone(), path_a.clone()],
        &out,
        &spec().digest_hex(),
    );
    assert!(matches!(dup, Err(JournalError::DuplicateKey(_))));
    // A digest the records were not written under.
    let foreign = merge_shard_journals(&[path_a], &out, "0000000000000000");
    assert!(matches!(foreign, Err(JournalError::DigestMismatch { .. })));
}

// ---------------------------------------------------------------------------
// Flight-recorder integration.
// ---------------------------------------------------------------------------

#[test]
fn traced_campaign_is_bit_identical_and_emits_the_cell_lifecycle() {
    use dismem_sched::campaign::{resume_campaign_traced, run_fleet_campaign_traced};
    use dismem_trace::{FlightRecorder, TraceEvent};

    let plain_path = temp_journal("traced-plain");
    let plain = run_fleet_campaign(
        &spec(),
        &SyntheticRunner,
        &plain_path,
        None,
        &FaultPlan::none(),
    )
    .expect("unrecorded run");

    let victim = spec().cells()[3].id();
    let fault = FaultPlan::none().with_poison(&victim, 1);
    let path = temp_journal("traced");
    let mut recorder = FlightRecorder::new();
    let report = run_fleet_campaign_traced(
        &spec(),
        &SyntheticRunner,
        &path,
        None,
        &fault,
        &mut recorder,
    )
    .expect("traced run");
    // Recording must not perturb the campaign (the healed retry changes the
    // victim's attempt count, so compare against an identically-faulted run).
    let ref_path = temp_journal("traced-ref");
    let unrecorded = run_fleet_campaign(&spec(), &SyntheticRunner, &ref_path, None, &fault)
        .expect("unrecorded faulted run");
    assert_eq!(json(&report), json(&unrecorded));
    assert_eq!(plain.completed.len(), report.completed.len());

    let count = |name: &str| {
        recorder
            .events()
            .iter()
            .filter(|e| e.name() == name)
            .count() as u64
    };
    assert_eq!(count("CampaignCellStarted"), CELLS + 1, "one retry attempt");
    assert_eq!(count("CampaignCellFinished"), CELLS);
    assert_eq!(count("CampaignCellRetried"), 1);
    assert_eq!(count("CampaignCellQuarantined"), 0);
    assert_eq!(
        recorder.metrics().counter("campaign.cells_completed"),
        CELLS
    );
    assert_eq!(recorder.metrics().counter("campaign.cells_retried"), 1);

    // Resume under a foreign digest with a recorder: every drop is traced.
    let changed = FleetSpec {
        config_digest: 0x5EED,
        ..spec()
    };
    let mut resume_recorder = FlightRecorder::new();
    let (resumed, stats) = resume_campaign_traced(
        &changed,
        &SyntheticRunner,
        &path,
        None,
        &FaultPlan::none(),
        &mut resume_recorder,
    )
    .expect("traced resume");
    assert_eq!(stats.digest_rejected, CELLS);
    assert_eq!(resumed.rejected_records, CELLS);
    let rejected: Vec<&TraceEvent> = resume_recorder
        .events()
        .iter()
        .filter(|e| e.name() == "JournalRecordRejected")
        .collect();
    assert_eq!(rejected.len() as u64, CELLS);
    for event in rejected {
        if let TraceEvent::JournalRecordRejected { reason, .. } = event {
            assert_eq!(reason, "foreign-digest");
        }
    }
    assert_eq!(
        resume_recorder
            .metrics()
            .counter("journal.records_rejected"),
        CELLS
    );
}

// ---------------------------------------------------------------------------
// End to end with the production runner.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Snapshot warm-start faults.
// ---------------------------------------------------------------------------

/// 1 workload × 2 policies × 2 seeds sharing one warm prefix: the smallest
/// grid on which the snapshot cache amortizes (1 miss + 3 hits).
fn snap_spec() -> FleetSpec {
    FleetSpec {
        workloads: vec!["BFS".to_string()],
        scales: vec!["tiny".to_string()],
        policies: vec!["baseline".to_string(), "aware".to_string()],
        capacities_permille: vec![500],
        links: vec!["upi".to_string()],
        seeds: vec![7, 8],
        max_attempts: 2,
        config_digest: MachineConfig::test_config().config_digest(),
    }
}

fn temp_cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dismem-resilience-{}-cache-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn warm_runner(dir: &PathBuf) -> SimCellRunner {
    SimCellRunner::quick(MachineConfig::test_config())
        .with_snapshot_cache(SnapshotCache::new(dir).expect("create cache dir"))
}

/// The cold (cache-less) reference report for [`snap_spec`].
fn snap_reference(name: &str) -> CampaignReport {
    let path = temp_journal(&format!("{name}-cold"));
    let runner = SimCellRunner::quick(MachineConfig::test_config());
    let report = run_fleet_campaign(&snap_spec(), &runner, &path, None, &FaultPlan::none())
        .expect("cold reference");
    assert_eq!(report.completed.len(), 4);
    assert_eq!(report.snapshot, SnapshotStats::default());
    report
}

#[test]
fn warm_start_campaign_is_bit_identical_to_cold() {
    let cold = snap_reference("snap-warm");
    let dir = temp_cache_dir("warm");

    // Fresh cache: the first cell of the prefix misses and writes the
    // snapshot, the other three warm-start from it.
    let warm_path = temp_journal("snap-warm-warm");
    let warm = run_fleet_campaign(
        &snap_spec(),
        &warm_runner(&dir),
        &warm_path,
        None,
        &FaultPlan::none(),
    )
    .expect("warm campaign");
    assert_eq!(
        warm.snapshot,
        SnapshotStats {
            hits: 3,
            misses: 1,
            fallbacks: 0
        }
    );
    assert_eq!(json_normalized(&warm), json_normalized(&cold));

    // A second campaign over the same directory hits the on-disk snapshot
    // for every cell — no warm-up simulation at all.
    let again_path = temp_journal("snap-warm-again");
    let again = run_fleet_campaign(
        &snap_spec(),
        &warm_runner(&dir),
        &again_path,
        None,
        &FaultPlan::none(),
    )
    .expect("all-hit campaign");
    assert_eq!(
        again.snapshot,
        SnapshotStats {
            hits: 4,
            misses: 0,
            fallbacks: 0
        }
    );
    assert_eq!(json_normalized(&again), json_normalized(&cold));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_snapshots_fall_back_cold_bit_identically() {
    let cold = snap_reference("snap-tamper");
    for (tamper, label) in [
        (SnapshotTamper::Truncate, "truncate"),
        (SnapshotTamper::ForeignDigest, "foreign"),
        (SnapshotTamper::VersionMismatch, "version"),
    ] {
        let dir = temp_cache_dir(&format!("tamper-{label}"));
        // Warm the cache, then damage every snapshot file byte-level.
        let seed_path = temp_journal(&format!("snap-tamper-seed-{label}"));
        run_fleet_campaign(
            &snap_spec(),
            &warm_runner(&dir),
            &seed_path,
            None,
            &FaultPlan::none(),
        )
        .expect("cache-warming campaign");
        let plan = FaultPlan::none().with_snapshot_tamper(tamper);
        let damaged = plan.tamper_snapshots(&dir).expect("tamper snapshots");
        assert_eq!(damaged, 1, "{label}: one snapshot file per warm prefix");

        // A fresh campaign over the damaged cache must never abort: every
        // cell falls back to the cold path, counted, bit-identical.
        let path = temp_journal(&format!("snap-tamper-{label}"));
        let report = run_fleet_campaign(&snap_spec(), &warm_runner(&dir), &path, None, &plan)
            .unwrap_or_else(|e| panic!("{label}: fallback must not abort: {e}"));
        assert_eq!(
            report.snapshot,
            SnapshotStats {
                hits: 0,
                misses: 0,
                fallbacks: 4
            },
            "{label}: every cell of the poisoned prefix falls back"
        );
        assert!(report.failed_cells.is_empty(), "{label}: no quarantines");
        assert_eq!(
            json_normalized(&report),
            json_normalized(&cold),
            "{label}: fallback report must be bit-identical to cold"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sim_runner_kill_and_resume_is_bit_identical() {
    let sim_spec = FleetSpec {
        workloads: vec!["BFS".to_string()],
        scales: vec!["tiny".to_string()],
        policies: vec!["baseline".to_string(), "aware".to_string()],
        capacities_permille: vec![500],
        links: vec!["upi".to_string()],
        seeds: vec![7],
        max_attempts: 2,
        config_digest: MachineConfig::test_config().config_digest(),
    };
    let runner = SimCellRunner::quick(MachineConfig::test_config());
    let ref_path = temp_journal("sim-reference");
    let reference = run_fleet_campaign(&sim_spec, &runner, &ref_path, None, &FaultPlan::none())
        .expect("sim reference");
    assert_eq!(reference.completed.len(), 2);

    let path = temp_journal("sim-kill");
    let killed = run_fleet_campaign(&sim_spec, &runner, &path, None, &FaultPlan::kill_after(1));
    assert!(matches!(killed, Err(CampaignError::Interrupted { .. })));
    let (resumed, stats) =
        resume_campaign(&sim_spec, &runner, &path, None, &FaultPlan::none()).expect("sim resume");
    assert_eq!(stats.replayed, 1);
    assert_eq!(stats.reran, 1);
    assert_eq!(
        json(&resumed),
        json(&reference),
        "simulated cells must round-trip the journal bit-identically"
    );
}
