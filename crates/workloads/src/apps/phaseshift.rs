//! PhaseShift: a phase-shifting working-set proxy for dynamic-tiering
//! studies.
//!
//! Not one of the paper's six applications — this workload exists to exercise
//! the axis the paper's platform pins down: page placement over *time*. A
//! large arena is interleaved across the tiers (the static best-effort
//! placement when the footprint exceeds local capacity), and execution then
//! proceeds in phases: each phase hammers one region of the arena (a working
//! set that would fit in node-local DRAM) with latency-sensitive strided
//! sweeps for many passes, then shifts to the next region. Pointer-chasing
//! solvers, time-stepped multi-physics codes and graph algorithms with
//! frontier-dependent footprints all show this "hot set moves, total
//! footprint does not" shape.
//!
//! Under static placement every pass of every phase pays the pool for the
//! interleaved half of its region. A hot-promotion policy instead pays a
//! one-off migration per phase shift, after which the region is served
//! locally — the canonical case for OS tiering (TPP, AutoNUMA), reproduced
//! here so policy sweeps have a workload where dynamic tiering visibly wins.
//!
//! The strided access pattern (several cache lines apart) defeats the stream
//! prefetcher, so pool residency costs exposed miss latency, not just
//! bandwidth — which is exactly where tier locality matters most on the
//! paper's testbed (202 ns pool vs 111 ns local).

use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine, PlacementPolicy, PAGE_SIZE};

/// PhaseShift parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShiftParams {
    /// Total arena size in bytes (should exceed local capacity in pooled
    /// configurations).
    pub arena_bytes: u64,
    /// Bytes of the per-phase hot region (should fit in local capacity, but
    /// exceed the last-level cache).
    pub region_bytes: u64,
    /// Strided sweeps over the hot region per phase.
    pub passes_per_phase: u32,
    /// How many times the schedule cycles through all regions.
    pub rounds: u32,
    /// Stride of the sweep in bytes (several cache lines: prefetch-hostile).
    pub stride_bytes: u64,
    /// Interleave ratio (local : pool) of the arena's static placement.
    pub interleave: (u32, u32),
}

impl PhaseShiftParams {
    /// Benchmark-sized configuration, scaled 1:2:4 like the paper's inputs.
    /// The stride (two cache lines) defeats the stream prefetcher, and the
    /// per-pass touched-line set (region / stride) exceeds the scaled 2 MiB
    /// LLC, so every pass pays DRAM misses at its region's current placement.
    pub fn bench(scale: InputScale) -> Self {
        let f = scale.factor();
        Self {
            arena_bytes: f * (32 << 20),
            region_bytes: f * (8 << 20),
            passes_per_phase: 12,
            rounds: 2,
            stride_bytes: 128,
            interleave: (1, 1),
        }
    }

    /// Tiny configuration for unit tests (sized against the tiny test cache:
    /// 3072 touched lines per pass vs a 1024-line LLC, and a phase dwell long
    /// enough that a one-off page migration amortizes).
    pub fn tiny() -> Self {
        Self {
            arena_bytes: 288 * PAGE_SIZE,
            region_bytes: 96 * PAGE_SIZE,
            passes_per_phase: 16,
            rounds: 2,
            stride_bytes: 128,
            interleave: (1, 1),
        }
    }

    /// Number of phases per round.
    pub fn regions(&self) -> u64 {
        (self.arena_bytes / self.region_bytes).max(1)
    }

    /// Elements swept per pass.
    pub fn elements_per_pass(&self) -> u64 {
        self.region_bytes / self.stride_bytes
    }
}

/// The phase-shifting working-set workload.
#[derive(Debug, Clone)]
pub struct PhaseShift {
    params: PhaseShiftParams,
}

impl PhaseShift {
    /// Creates the workload.
    pub fn new(params: PhaseShiftParams) -> Self {
        assert!(
            params.region_bytes > 0
                && params.arena_bytes >= params.region_bytes
                && params.stride_bytes >= 8,
            "invalid PhaseShift parameters: {params:?}"
        );
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &PhaseShiftParams {
        &self.params
    }
}

impl Workload for PhaseShift {
    fn name(&self) -> &'static str {
        "PhaseShift"
    }

    fn description(&self) -> &'static str {
        "Phase-shifting working set over a tier-interleaved arena (dynamic-tiering proxy)"
    }

    fn parallelization(&self) -> &'static str {
        "OpenMP"
    }

    fn input_description(&self) -> String {
        let p = &self.params;
        format!(
            "{} MiB arena, {} MiB hot region, {} regions x {} rounds, {} passes, stride {}",
            p.arena_bytes >> 20,
            p.region_bytes >> 20,
            p.regions(),
            p.rounds,
            p.passes_per_phase,
            p.stride_bytes,
        )
    }

    fn expected_footprint_bytes(&self) -> u64 {
        // Arena plus the small per-phase accumulator.
        self.params.arena_bytes + PAGE_SIZE
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let p = &self.params;
        let (il_local, il_pool) = p.interleave;
        let arena = engine.alloc_with_policy(
            "arena",
            "phaseshift.rs:init",
            p.arena_bytes,
            PlacementPolicy::interleave(il_local, il_pool),
        );
        let acc = engine.alloc("accumulator", "phaseshift.rs:init", PAGE_SIZE);

        engine.phase_start("p1-init");
        engine.touch(arena, p.arena_bytes);
        engine.touch(acc, PAGE_SIZE);
        engine.flops(p.arena_bytes / 8);
        engine.phase_end();

        engine.phase_start("p2-phased-sweeps");
        let regions = p.regions();
        let elements = p.elements_per_pass();
        for round in 0..p.rounds as u64 {
            for region in 0..regions {
                // Walk the regions in a round-dependent order so consecutive
                // rounds do not replay the identical schedule.
                let idx = (region + round) % regions;
                let base = idx * p.region_bytes;
                for _ in 0..p.passes_per_phase {
                    engine.strided(arena, base, elements, 8, p.stride_bytes, AccessKind::Read);
                    // A small reduction per pass: low arithmetic intensity,
                    // the runtime is dominated by the sweep's misses.
                    engine.write(acc, 0, 64);
                    engine.flops(elements * 2);
                }
            }
        }
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn phases_cover_each_region_every_round() {
        let w = PhaseShift::new(PhaseShiftParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        assert_eq!(stats.phases.len(), 2);
        let p = w.params();
        // Every pass reads `elements` 8-byte elements.
        let expected_reads =
            p.regions() * p.rounds as u64 * p.passes_per_phase as u64 * p.elements_per_pass() * 8;
        assert_eq!(stats.phases[1].bytes_read, expected_reads);
        assert!(stats.peak_footprint_bytes >= p.arena_bytes);
    }

    #[test]
    fn sweep_touches_the_whole_arena_but_one_region_at_a_time() {
        let w = PhaseShift::new(PhaseShiftParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        // All arena pages are touched (init + sweeps)...
        let arena_pages = w.params().arena_bytes / PAGE_SIZE;
        assert!(rec.histogram().touched_pages() as u64 >= arena_pages);
        // ...but each sweep pass is confined to one region, so the access
        // distribution is skewed towards whichever pages were hot.
        let share = rec
            .histogram()
            .footprint_for_access_share(arena_pages + 1, 0.5);
        assert!(share <= 0.75, "access skew expected, got {share}");
    }

    #[test]
    fn footprint_scales_with_input() {
        let f1 =
            PhaseShift::new(PhaseShiftParams::bench(InputScale::X1)).expected_footprint_bytes();
        let f4 =
            PhaseShift::new(PhaseShiftParams::bench(InputScale::X4)).expected_footprint_bytes();
        assert!(f4 > 3 * f1 && f4 < 5 * f1);
    }

    #[test]
    #[should_panic(expected = "invalid PhaseShift")]
    fn rejects_region_larger_than_arena() {
        let _ = PhaseShift::new(PhaseShiftParams {
            arena_bytes: PAGE_SIZE,
            region_bytes: 2 * PAGE_SIZE,
            ..PhaseShiftParams::tiny()
        });
    }
}
