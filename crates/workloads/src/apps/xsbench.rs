//! XSBench proxy: Monte Carlo neutron-transport cross-section lookups.
//!
//! Reproduces the memory behaviour of XSBench's `large` unionized-grid
//! configuration: enormous grid structures are allocated, but each lookup
//! touches only a handful of sampled points — a binary search over the
//! unionized energy grid, the per-isotope cross-section values at the found
//! gridpoint, and (for a fraction of lookups) a row of the huge index grid.
//! The accesses are essentially random, so hardware prefetching provides
//! almost no coverage and the application is latency-sensitive rather than
//! bandwidth-hungry, with a very low remote-access ratio because the hot
//! structures are small and allocated first (Section 5.1 of the paper).

use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// XSBench proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsBenchParams {
    /// Gridpoints per isotope.
    pub gridpoints: usize,
    /// Number of isotopes (nuclides).
    pub isotopes: usize,
    /// Number of macroscopic cross-section lookups.
    pub lookups: usize,
    /// Fraction (0–100) of lookups that also read a row of the unionized
    /// index grid.
    pub index_row_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl XsBenchParams {
    /// Simulation-friendly input sizes with the paper's 1:2:4 footprint ratio.
    pub fn bench(scale: InputScale) -> Self {
        let gridpoints = match scale {
            InputScale::X1 => 5_000,
            InputScale::X2 => 10_000,
            InputScale::X4 => 20_000,
        };
        Self {
            gridpoints,
            isotopes: 48,
            lookups: 60_000,
            index_row_percent: 10,
            seed: 0x5EED,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            gridpoints: 100,
            isotopes: 48,
            lookups: 500,
            index_row_percent: 10,
            seed: 0x5EED,
        }
    }

    /// Entries in the unionized energy grid.
    pub fn unionized_points(&self) -> u64 {
        (self.gridpoints * self.isotopes) as u64
    }

    /// Bytes of the unionized energy array (f64 per point).
    pub fn energy_grid_bytes(&self) -> u64 {
        self.unionized_points() * 8
    }

    /// Bytes of the per-isotope nuclide grids (6 doubles per point).
    pub fn nuclide_grid_bytes(&self) -> u64 {
        (self.isotopes * self.gridpoints * 6 * 8) as u64
    }

    /// Bytes of the unionized index grid (one u32 per isotope per unionized
    /// point).
    pub fn index_grid_bytes(&self) -> u64 {
        self.unionized_points() * self.isotopes as u64 * 4
    }
}

/// The XSBench proxy workload.
#[derive(Debug, Clone)]
pub struct XsBench {
    params: XsBenchParams,
}

impl XsBench {
    /// Creates the workload.
    pub fn new(params: XsBenchParams) -> Self {
        assert!(params.gridpoints > 1 && params.isotopes > 0 && params.lookups > 0);
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &XsBenchParams {
        &self.params
    }
}

impl Workload for XsBench {
    fn name(&self) -> &'static str {
        "XSBench"
    }

    fn description(&self) -> &'static str {
        "Monte Carlo neutron transport proxy application"
    }

    fn input_description(&self) -> String {
        format!(
            "{} gridpoints, {} isotopes, {} lookups",
            self.params.gridpoints, self.params.isotopes, self.params.lookups
        )
    }

    fn expected_footprint_bytes(&self) -> u64 {
        self.params.energy_grid_bytes()
            + self.params.nuclide_grid_bytes()
            + self.params.index_grid_bytes()
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);

        // Allocation order follows XSBench's initialization: the (relatively
        // small, hot) energy and nuclide grids first, the huge unionized
        // index grid last. Under first-touch placement this keeps the hot
        // structures in node-local memory.
        let energy = engine.alloc(
            "unionized-energy-grid",
            "xsbench.rs:grid_init",
            p.energy_grid_bytes(),
        );
        let nuclides = engine.alloc(
            "nuclide-grids",
            "xsbench.rs:grid_init",
            p.nuclide_grid_bytes(),
        );
        let index = engine.alloc(
            "unionized-index-grid",
            "xsbench.rs:grid_init",
            p.index_grid_bytes(),
        );

        // Phase 1: grid initialization (streaming writes over everything).
        engine.phase_start("p1-grid-init");
        engine.touch(energy, p.energy_grid_bytes());
        engine.touch(nuclides, p.nuclide_grid_bytes());
        engine.touch(index, p.index_grid_bytes());
        engine.flops(p.unionized_points() * 2);
        engine.phase_end();

        // Phase 2: cross-section lookups.
        engine.phase_start("p2-lookups");
        let union_points = p.unionized_points();
        let binsearch_steps = 64 - (union_points.leading_zeros() as u64).min(63);
        let iso_stride = (p.gridpoints * 6 * 8) as u64;
        let mut probes: Vec<u64> = Vec::with_capacity(binsearch_steps as usize);
        for _ in 0..p.lookups {
            // Sample a particle energy: binary search over the unionized
            // grid. The probe sequence is a pure function of the target, so
            // the whole search is issued as one bulk gather (same probes,
            // same order).
            let mut lo = 0u64;
            let mut hi = union_points - 1;
            let target = rng.gen_range(0..union_points);
            probes.clear();
            for _ in 0..binsearch_steps {
                if lo >= hi {
                    break;
                }
                let mid = (lo + hi) / 2;
                probes.push(mid * 8);
                if mid < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            engine.gather(energy, &probes, 8);
            let gridpoint = (target % p.gridpoints as u64).min(p.gridpoints as u64 - 2);

            // Occasionally consult the unionized index grid row (sequential
            // within the row, random row).
            if rng.gen_range(0..100) < p.index_row_percent {
                let row = target * p.isotopes as u64 * 4;
                engine.access_range(index, row, (p.isotopes * 4) as u64, AccessKind::Read);
            }

            // Gather the two bracketing gridpoints for every isotope and
            // interpolate (6 values each): one strided sweep through the
            // per-isotope grids, issued through the bulk API.
            engine.strided(
                nuclides,
                gridpoint * 48,
                p.isotopes as u64,
                96,
                iso_stride,
                AccessKind::Read,
            );
            engine.flops(p.isotopes as u64 * 12);
            // Accumulate macroscopic cross sections.
            engine.flops(p.isotopes as u64 * 6);
        }
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn lookups_concentrate_on_a_small_fraction_of_the_footprint() {
        let w = XsBench::new(XsBenchParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        // The initialization phase writes the entire footprint.
        assert!(stats.phases[0].bytes_written >= stats.peak_footprint_bytes);
        // The access distribution is skewed: most accesses land on the small
        // hot structures (the paper's Figure 6f shape).
        let footprint_pages = stats.peak_footprint_bytes.div_ceil(dismem_trace::PAGE_SIZE);
        let share = rec
            .histogram()
            .footprint_for_access_share(footprint_pages, 0.7);
        assert!(
            share < 0.5,
            "70% of accesses should need < 50% of the footprint, got {share}"
        );
    }

    #[test]
    fn lookup_phase_has_very_low_arithmetic_intensity() {
        let w = XsBench::new(XsBenchParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let ai = rec.stats().phases[1].arithmetic_intensity();
        assert!(ai < 1.0, "lookup AI should be low, got {ai}");
    }

    #[test]
    fn index_grid_is_the_largest_and_last_allocation() {
        let w = XsBench::new(XsBenchParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let allocs = rec.allocations();
        assert_eq!(allocs.last().unwrap().name, "unionized-index-grid");
        let index_bytes = allocs.last().unwrap().bytes;
        for a in allocs.iter().take(allocs.len() - 1) {
            assert!(a.bytes < index_bytes);
        }
        // The hot structures fit in well under half of the footprint, so they
        // can stay local even at a 50% pooling ratio.
        let hot: u64 = allocs
            .iter()
            .filter(|a| a.name != "unionized-index-grid")
            .map(|a| a.bytes)
            .sum();
        assert!(hot * 2 < rec.stats().peak_footprint_bytes);
    }

    #[test]
    fn traffic_scales_with_lookup_count() {
        let run = |lookups| {
            let w = XsBench::new(XsBenchParams {
                lookups,
                ..XsBenchParams::tiny()
            });
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            rec.stats().phases[1].bytes_read
        };
        let t1 = run(500);
        let t2 = run(1000);
        let ratio = t2 as f64 / t1 as f64;
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
    }
}
