//! Hypre proxy: structured-grid linear solver (stencil relaxation sweeps).
//!
//! Reproduces the memory behaviour of Hypre's structured interface (the
//! paper's `ex4` input): a few large grid-shaped vectors streamed repeatedly
//! by 7-point stencil sweeps. Very low arithmetic intensity, near-perfect
//! streaming (high prefetch accuracy and coverage) — which is exactly why the
//! paper finds Hypre to be among the most interference-sensitive workloads.

use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine};

/// Hypre proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypreParams {
    /// Grid points per dimension (the grid is `n³` points).
    pub n: usize,
    /// Number of relaxation sweeps in the solve phase.
    pub sweeps: usize,
}

impl HypreParams {
    /// Simulation-friendly input sizes with the paper's 1:2:4 footprint ratio.
    pub fn bench(scale: InputScale) -> Self {
        let n = match scale {
            InputScale::X1 => 112,
            InputScale::X2 => 141,
            InputScale::X4 => 178,
        };
        Self { n, sweeps: 6 }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { n: 16, sweeps: 2 }
    }

    /// Points in the grid.
    pub fn points(&self) -> u64 {
        (self.n * self.n * self.n) as u64
    }

    /// Bytes per grid-shaped vector of doubles.
    pub fn vector_bytes(&self) -> u64 {
        self.points() * 8
    }
}

/// The Hypre proxy workload.
#[derive(Debug, Clone)]
pub struct Hypre {
    params: HypreParams,
}

impl Hypre {
    /// Creates the workload.
    pub fn new(params: HypreParams) -> Self {
        assert!(params.n >= 4 && params.sweeps >= 1);
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &HypreParams {
        &self.params
    }
}

impl Workload for Hypre {
    fn name(&self) -> &'static str {
        "Hypre"
    }

    fn description(&self) -> &'static str {
        "Library of high-performance linear solvers (structured interface)"
    }

    fn input_description(&self) -> String {
        format!("n={}³ grid, {} sweeps", self.params.n, self.params.sweeps)
    }

    fn expected_footprint_bytes(&self) -> u64 {
        4 * self.params.vector_bytes()
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let vbytes = self.params.vector_bytes();
        let n = self.params.n;
        let plane_bytes = (n * n * 8) as u64;

        // Allocation order matches a typical structured-solver setup: matrix
        // coefficients, right-hand side, solution, residual/temp.
        let coeff = engine.alloc("stencil-coefficients", "hypre.rs:setup", vbytes);
        let rhs = engine.alloc("rhs", "hypre.rs:setup", vbytes);
        let x = engine.alloc("solution", "hypre.rs:setup", vbytes);
        let tmp = engine.alloc("residual", "hypre.rs:setup", vbytes);

        // Phase 1: grid setup and coefficient assembly (streaming writes).
        engine.phase_start("p1-setup");
        engine.touch(coeff, vbytes);
        engine.touch(rhs, vbytes);
        engine.touch(x, vbytes);
        engine.touch(tmp, vbytes);
        engine.flops(3 * self.params.points());
        engine.phase_end();

        // Phase 2: relaxation sweeps (7-point stencil Jacobi-style).
        engine.phase_start("p2-solve");
        for sweep in 0..self.params.sweeps {
            // Alternate the roles of x and tmp each sweep (ping-pong).
            let (src, dst) = if sweep % 2 == 0 { (x, tmp) } else { (tmp, x) };
            for plane in 0..n {
                let offset = plane as u64 * plane_bytes;
                // Read the planes of the source vector involved in the
                // stencil (previous, current, next): they are contiguous in
                // memory, so the whole stencil input is one bulk range — the
                // previous/next planes are usually still in cache from the
                // streaming pattern.
                let first = offset.saturating_sub(plane_bytes);
                let last = (offset + 2 * plane_bytes).min(n as u64 * plane_bytes);
                engine.access_range(src, first, last - first, AccessKind::Read);
                // Coefficients and right-hand side for the current plane.
                engine.access_range(coeff, offset, plane_bytes, AccessKind::Read);
                engine.access_range(rhs, offset, plane_bytes, AccessKind::Read);
                // Write the destination plane.
                engine.access_range(dst, offset, plane_bytes, AccessKind::Write);
                // 7-point stencil: ~8 flops per point.
                engine.flops(8 * (n * n) as u64);
            }
        }
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn solve_phase_has_low_arithmetic_intensity() {
        let w = Hypre::new(HypreParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        let solve = &stats.phases[1];
        assert!(
            solve.arithmetic_intensity() < 1.0,
            "stencil sweeps must be memory bound"
        );
        assert!(
            solve.bytes_read > solve.bytes_written,
            "stencil reads more than it writes"
        );
    }

    #[test]
    fn traffic_scales_with_sweeps() {
        let run = |sweeps| {
            let w = Hypre::new(HypreParams { n: 16, sweeps });
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            let p = &rec.stats().phases[1];
            p.bytes_read + p.bytes_written
        };
        let t2 = run(2);
        let t4 = run(4);
        assert!((t4 as f64 / t2 as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn footprint_is_four_vectors() {
        let p = HypreParams::tiny();
        let w = Hypre::new(p);
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        assert_eq!(rec.stats().peak_footprint_bytes, 4 * p.vector_bytes());
        assert_eq!(rec.allocations().len(), 4);
    }

    #[test]
    fn bench_scales_roughly_double_footprint() {
        let f1 = HypreParams::bench(InputScale::X1).vector_bytes();
        let f2 = HypreParams::bench(InputScale::X2).vector_bytes();
        let f4 = HypreParams::bench(InputScale::X4).vector_bytes();
        assert!((f2 as f64 / f1 as f64 - 2.0).abs() < 0.15);
        assert!((f4 as f64 / f1 as f64 - 4.0).abs() < 0.3);
    }
}
