//! HPL proxy: blocked dense LU factorization with partial pivoting.
//!
//! Memory behaviour of the High Performance LINPACK benchmark: one large
//! dense matrix streamed block-by-block in a right-looking factorization.
//! The trailing-matrix update dominates both flops (`2/3 N^3`) and traffic
//! (`~ N^3 / NB` bytes), giving the high arithmetic intensity and excellent
//! prefetchability the paper reports (compute-bound, low interference
//! sensitivity despite substantial pool traffic).

use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine};

/// HPL proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HplParams {
    /// Matrix dimension N (the matrix is N × N doubles).
    pub n: usize,
    /// Blocking factor NB.
    pub block: usize,
}

impl HplParams {
    /// Simulation-friendly input sizes with the paper's 1:2:4 footprint ratio.
    pub fn bench(scale: InputScale) -> Self {
        let n = match scale {
            InputScale::X1 => 1536,
            InputScale::X2 => 2176,
            InputScale::X4 => 3072,
        };
        Self { n, block: 128 }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { n: 96, block: 32 }
    }

    /// Matrix bytes.
    pub fn matrix_bytes(&self) -> u64 {
        (self.n * self.n * 8) as u64
    }
}

/// The HPL proxy workload.
#[derive(Debug, Clone)]
pub struct Hpl {
    params: HplParams,
}

impl Hpl {
    /// Creates the workload.
    pub fn new(params: HplParams) -> Self {
        assert!(params.block > 0 && params.n >= params.block);
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &HplParams {
        &self.params
    }
}

/// Bytes per read-then-write tile of a blocked sweep: small enough to stay
/// resident in the scaled-emulation LLC (2 MiB), so the write sweep of a
/// tile hits the lines its read sweep filled.
const TILE_BYTES: u64 = 256 * 1024;

impl Hpl {
    /// Reads then writes `rows` rows of `row_bytes` each, `stride_bytes`
    /// apart, in cache-resident tiles (the access shape of a blocked
    /// in-place update such as dgemm on the trailing matrix).
    fn tiled_read_write_sweep(
        engine: &mut dyn MemoryEngine,
        a: dismem_trace::ObjectHandle,
        offset: u64,
        rows: u64,
        row_bytes: u64,
        stride_bytes: u64,
    ) {
        let tile_rows = (TILE_BYTES / row_bytes.max(1)).max(1);
        let mut row = 0u64;
        while row < rows {
            let tile = tile_rows.min(rows - row);
            let tile_offset = offset + row * stride_bytes;
            engine.strided(
                a,
                tile_offset,
                tile,
                row_bytes,
                stride_bytes,
                AccessKind::Read,
            );
            engine.strided(
                a,
                tile_offset,
                tile,
                row_bytes,
                stride_bytes,
                AccessKind::Write,
            );
            row += tile;
        }
    }
}

impl Workload for Hpl {
    fn name(&self) -> &'static str {
        "HPL"
    }

    fn description(&self) -> &'static str {
        "High Performance LINPACK benchmark, dense LU factorization with partial pivoting"
    }

    fn input_description(&self) -> String {
        format!("N={}, NB={}", self.params.n, self.params.block)
    }

    fn expected_footprint_bytes(&self) -> u64 {
        self.params.matrix_bytes() + (self.params.n as u64) * 8 * 2
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let n = self.params.n;
        let nb = self.params.block;

        let a = engine.alloc("A", "hpl.rs:matrix", self.params.matrix_bytes());
        let piv = engine.alloc("ipiv", "hpl.rs:pivot", (n * 8) as u64);
        let work = engine.alloc("workspace", "hpl.rs:workspace", (n * 8) as u64);

        // Phase 1: matrix generation (pseudo-random fill, purely streaming).
        engine.phase_start("p1-generate");
        engine.touch(a, self.params.matrix_bytes());
        engine.touch(piv, (n * 8) as u64);
        engine.touch(work, (n * 8) as u64);
        engine.flops((n * n) as u64);
        engine.phase_end();

        // Phase 2: right-looking blocked LU factorization.
        engine.phase_start("p2-factorize");
        let steps = n / nb;
        for k in 0..steps {
            let col0 = k * nb;
            let trailing = n - col0;

            // Panel factorization: read then update the panel column block
            // (rows col0..n, columns col0..col0+nb), as strided sweeps over
            // cache-resident row tiles — HPL's blocked factorization keeps
            // its working set in cache, so the write sweep of a tile hits
            // the lines its read sweep just filled (same fills per row as
            // the row-interleaved model), while the bulk API sees whole
            // row-run sweeps instead of per-row calls.
            let panel_offset = (col0 * n + col0) as u64 * 8;
            Self::tiled_read_write_sweep(
                engine,
                a,
                panel_offset,
                trailing as u64,
                (nb * 8) as u64,
                (n * 8) as u64,
            );
            // Pivot search bookkeeping.
            engine.access_range(piv, (col0 * 8) as u64, (nb * 8) as u64, AccessKind::Write);
            engine.flops((nb * nb * trailing) as u64);

            if trailing <= nb {
                continue;
            }
            let rest = trailing - nb;

            // Row swap + triangular solve of the U block row
            // (rows col0..col0+nb, columns col0+nb..n).
            let ublock_offset = (col0 * n + col0 + nb) as u64 * 8;
            Self::tiled_read_write_sweep(
                engine,
                a,
                ublock_offset,
                nb as u64,
                (rest * 8) as u64,
                (n * 8) as u64,
            );
            engine.flops((nb * nb * rest) as u64);

            // Trailing matrix update: C -= L_panel * U_block. Each trailing
            // row is read and written once per step; the panel block is
            // cache-resident and re-read implicitly.
            let trailing_offset = ((col0 + nb) * n + col0 + nb) as u64 * 8;
            Self::tiled_read_write_sweep(
                engine,
                a,
                trailing_offset,
                rest as u64,
                (rest * 8) as u64,
                (n * 8) as u64,
            );
            engine.flops((2 * nb * rest * rest) as u64);
        }
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn flops_match_lu_asymptotics() {
        let w = Hpl::new(HplParams { n: 256, block: 32 });
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        let expected = 2.0 / 3.0 * 256.0f64.powi(3);
        let ratio = stats.total_flops as f64 / expected;
        assert!(
            (0.8..=1.4).contains(&ratio),
            "flops {} vs 2/3 N^3 = {expected}",
            stats.total_flops
        );
    }

    #[test]
    fn factorize_phase_dominates_traffic() {
        let w = Hpl::new(HplParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        assert_eq!(stats.phases.len(), 2);
        let p1 = &stats.phases[0];
        let p2 = &stats.phases[1];
        assert!(p2.bytes_read + p2.bytes_written > p1.bytes_read + p1.bytes_written);
        // The factorization phase has much higher arithmetic intensity than
        // the generation phase.
        assert!(p2.arithmetic_intensity() > 4.0 * p1.arithmetic_intensity());
    }

    #[test]
    fn footprint_is_matrix_dominated() {
        let w = Hpl::new(HplParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let expected = HplParams::tiny().matrix_bytes();
        let actual = rec.stats().peak_footprint_bytes;
        assert!(actual >= expected && actual < expected + expected / 4);
    }

    #[test]
    #[should_panic]
    fn rejects_block_larger_than_matrix() {
        let _ = Hpl::new(HplParams { n: 16, block: 32 });
    }
}
