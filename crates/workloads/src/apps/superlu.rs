//! SuperLU proxy: supernodal sparse LU factorization.
//!
//! Reproduces the memory behaviour of SuperLU on inputs like SiO / H2O /
//! Si34H36: dense panel work inside supernodes (sequential, prefetch
//! friendly) interleaved with scattered block updates into later supernodes
//! (irregular, which makes the hardware prefetcher overshoot — the source of
//! the paper's observation that SuperLU has ~37% excess prefetch traffic yet
//! still gains ~31% performance from prefetching). Three phases as in the
//! paper: setup, factorization, triangular solve.

use crate::generators::supernodes::{generate_supernodes, SupernodeStructure};
use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SuperLU proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperLuParams {
    /// Matrix dimension (number of columns).
    pub num_cols: usize,
    /// Average supernode width.
    pub supernode_width: usize,
    /// Fill-in growth factor (0–1).
    pub fill_growth: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SuperLuParams {
    /// Simulation-friendly input sizes with the paper's 1:2:4 footprint ratio.
    pub fn bench(scale: InputScale) -> Self {
        let num_cols = match scale {
            InputScale::X1 => 16_000,
            InputScale::X2 => 23_000,
            InputScale::X4 => 32_000,
        };
        Self {
            num_cols,
            supernode_width: 24,
            fill_growth: 0.5,
            seed: 0x51,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_cols: 600,
            supernode_width: 8,
            fill_growth: 0.5,
            seed: 0x51,
        }
    }
}

/// The SuperLU proxy workload.
#[derive(Debug, Clone)]
pub struct SuperLu {
    params: SuperLuParams,
    structure: SupernodeStructure,
}

impl SuperLu {
    /// Creates the workload (the sparsity structure is generated eagerly).
    pub fn new(params: SuperLuParams) -> Self {
        let structure = generate_supernodes(
            params.num_cols,
            params.supernode_width,
            params.fill_growth,
            params.seed,
        );
        Self { params, structure }
    }

    /// The configured parameters.
    pub fn params(&self) -> &SuperLuParams {
        &self.params
    }

    /// The generated supernodal structure.
    pub fn structure(&self) -> &SupernodeStructure {
        &self.structure
    }
}

impl Workload for SuperLu {
    fn name(&self) -> &'static str {
        "SuperLU"
    }

    fn description(&self) -> &'static str {
        "Sparse LU factorization"
    }

    fn input_description(&self) -> String {
        format!(
            "n={}, {} supernodes, factor nnz={}",
            self.params.num_cols,
            self.structure.supernodes.len(),
            self.structure.factor_elements
        )
    }

    fn expected_footprint_bytes(&self) -> u64 {
        self.structure.factor_bytes() + self.structure.matrix_bytes()
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let s = &self.structure;
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0xfeed);

        let matrix = engine.alloc("matrix-A", "superlu.rs:read_matrix", s.matrix_bytes());
        let factor = engine.alloc("LU-factor", "superlu.rs:factor_store", s.factor_bytes());
        let perm = engine.alloc(
            "permutations",
            "superlu.rs:ordering",
            (s.num_cols * 16) as u64,
        );

        // Phase 1: read the matrix, compute the ordering and the elimination
        // structure (streaming over A plus light integer work).
        engine.phase_start("p1-setup");
        engine.touch(matrix, s.matrix_bytes());
        engine.access_range(matrix, 0, s.matrix_bytes(), AccessKind::Read);
        engine.touch(perm, (s.num_cols * 16) as u64);
        engine.flops(s.matrix_nnz);
        engine.phase_end();

        // Phase 2: numerical factorization, supernode by supernode.
        engine.phase_start("p2-factorize");
        for (i, sn) in s.supernodes.iter().enumerate() {
            let panel_bytes = sn.elements() * 8;
            let panel_off = sn.panel_offset * 8;

            // Scatter the corresponding columns of A into the panel, then
            // factor the panel in place (dense, sequential).
            let a_read_bytes = (sn.width as u64 * sn.height as u64).min(64 * 1024);
            let a_off =
                (sn.start_col as u64 * 12).min(s.matrix_bytes().saturating_sub(a_read_bytes));
            engine.access_range(matrix, a_off, a_read_bytes, AccessKind::Read);
            engine.access_range(factor, panel_off, panel_bytes, AccessKind::Read);
            engine.access_range(factor, panel_off, panel_bytes, AccessKind::Write);
            engine.flops(sn.factor_flops());

            // Update later supernodes with small scattered blocks: each update
            // reads a slice of this panel and read-modify-writes a block at an
            // irregular position inside the target panel.
            for &target_idx in &sn.updates {
                let target = &s.supernodes[target_idx];
                let block_rows = (sn.width.min(target.height)).max(1) as u64;
                let block_bytes = (block_rows * 16).clamp(64, 4096).min(target.elements() * 8);
                let max_off = (target.elements() * 8 - block_bytes).max(1);
                let toff = target.panel_offset * 8 + rng.gen_range(0..max_off);
                engine.access_range(factor, panel_off, block_bytes, AccessKind::Read);
                engine.access_range(factor, toff, block_bytes, AccessKind::Read);
                engine.access_range(factor, toff, block_bytes, AccessKind::Write);
                engine.flops(2 * block_rows * sn.width as u64);
            }
            // Occasional pivoting bookkeeping.
            if i % 8 == 0 {
                engine.access_range(
                    perm,
                    (i as u64 * 16) % ((s.num_cols as u64 * 16) - 16),
                    16,
                    AccessKind::Write,
                );
            }
        }
        engine.phase_end();

        // Phase 3: forward/backward triangular solves (stream the factor).
        engine.phase_start("p3-solve");
        engine.access_range(factor, 0, s.factor_bytes(), AccessKind::Read);
        engine.flops(2 * s.factor_elements);
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn has_three_phases_like_the_paper() {
        let w = SuperLu::new(SuperLuParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        assert_eq!(stats.phases.len(), 3);
        assert_eq!(stats.phases[0].name, "p1-setup");
        assert_eq!(stats.phases[1].name, "p2-factorize");
        assert_eq!(stats.phases[2].name, "p3-solve");
    }

    #[test]
    fn factorization_dominates_flops() {
        let w = SuperLu::new(SuperLuParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        assert!(stats.phases[1].flops > stats.phases[0].flops);
        assert!(stats.phases[1].flops > stats.phases[2].flops);
    }

    #[test]
    fn factorization_has_moderate_arithmetic_intensity() {
        let w = SuperLu::new(SuperLuParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let ai = rec.stats().phases[1].arithmetic_intensity();
        assert!(ai > 0.5 && ai < 60.0, "unexpected AI {ai}");
    }

    #[test]
    fn footprint_matches_structure() {
        let w = SuperLu::new(SuperLuParams::tiny());
        let expected = w.structure().factor_bytes() + w.structure().matrix_bytes();
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let actual = rec.stats().peak_footprint_bytes;
        assert!(actual >= expected);
        assert!(actual < expected + expected / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let w = SuperLu::new(SuperLuParams::tiny());
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            let s = rec.stats();
            (s.bytes_read, s.bytes_written, s.total_flops)
        };
        assert_eq!(run(), run());
    }
}
