//! Ligra-style breadth-first search on an R-MAT graph.
//!
//! This proxy reproduces the BFS memory behaviour the paper analyses in depth
//! (Section 7.1): a large CSR graph whose adjacency data is streamed, a small
//! but very hot `Parents` array accessed randomly for every traversed edge,
//! a temporary object left over from graph construction, and per-level
//! dynamically allocated frontiers.
//!
//! With the default first-touch policy, the allocation order determines which
//! objects end up in node-local memory once the local tier is smaller than
//! the footprint. [`BfsOptimization`] exposes the three placements studied in
//! the paper's first case study:
//!
//! * `Baseline` — Ligra's natural order: graph arrays first, `Parents` last,
//!   construction temporary never freed;
//! * `ReorderAllocations` — `Parents` allocated and initialized first, so the
//!   hottest object lands in local memory;
//! * `ReorderAndFreeTemp` — additionally frees the construction temporary
//!   (the paper's "1-line change"), so dynamic frontier allocations can also
//!   use local memory.

use crate::generators::rmat::{rmat_graph, CsrGraph};
use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine, ObjectHandle};

/// Data-placement variant for the BFS case study (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BfsOptimization {
    /// Natural Ligra allocation order, temporary kept alive.
    #[default]
    Baseline,
    /// Allocate and initialize `Parents` before the graph arrays.
    ReorderAllocations,
    /// Reorder allocations and free the construction temporary after setup.
    ReorderAndFreeTemp,
}

impl BfsOptimization {
    /// All variants in the order the case study presents them.
    pub fn all() -> [BfsOptimization; 3] {
        [
            BfsOptimization::Baseline,
            BfsOptimization::ReorderAllocations,
            BfsOptimization::ReorderAndFreeTemp,
        ]
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BfsOptimization::Baseline => "baseline",
            BfsOptimization::ReorderAllocations => "reorder-allocations",
            BfsOptimization::ReorderAndFreeTemp => "reorder+free-temp",
        }
    }
}

/// BFS proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsParams {
    /// log2 of the number of vertices.
    pub log_vertices: u32,
    /// Average degree (directed edges per vertex before symmetrization).
    pub avg_degree: usize,
    /// Number of BFS traversals (from the highest-degree vertices).
    pub sources: usize,
    /// Data-placement variant.
    pub optimization: BfsOptimization,
    /// RNG seed for graph generation.
    pub seed: u64,
}

impl BfsParams {
    /// Simulation-friendly input sizes with the paper's 1:2:4 footprint ratio.
    pub fn bench(scale: InputScale) -> Self {
        let log_vertices = match scale {
            InputScale::X1 => 20,
            InputScale::X2 => 21,
            InputScale::X4 => 22,
        };
        Self {
            log_vertices,
            avg_degree: 8,
            sources: 1,
            optimization: BfsOptimization::Baseline,
            seed: 0xB55,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            log_vertices: 10,
            avg_degree: 8,
            sources: 1,
            optimization: BfsOptimization::Baseline,
            seed: 0xB55,
        }
    }

    /// Returns a copy with a different placement variant.
    pub fn with_optimization(mut self, optimization: BfsOptimization) -> Self {
        self.optimization = optimization;
        self
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u64 {
        1u64 << self.log_vertices
    }

    /// Approximate number of directed edges after symmetrization.
    pub fn edges(&self) -> u64 {
        self.vertices() * self.avg_degree as u64
    }
}

/// The BFS proxy workload.
#[derive(Debug)]
pub struct Bfs {
    params: BfsParams,
    graph: std::sync::OnceLock<CsrGraph>,
}

impl Clone for Bfs {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            graph: std::sync::OnceLock::new(),
        }
    }
}

impl Bfs {
    /// Creates the workload. The graph is generated lazily on first use so
    /// that merely instantiating a large configuration (e.g. to read its
    /// footprint estimate) stays cheap; repeated runs of the same instance
    /// traverse the same input.
    pub fn new(params: BfsParams) -> Self {
        Self {
            params,
            graph: std::sync::OnceLock::new(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &BfsParams {
        &self.params
    }

    /// The generated graph (generated on first call).
    pub fn graph(&self) -> &CsrGraph {
        self.graph.get_or_init(|| {
            let directed_edges = (self.params.vertices() as usize * self.params.avg_degree) / 2;
            rmat_graph(self.params.log_vertices, directed_edges, self.params.seed)
        })
    }

    fn alloc_parents(&self, engine: &mut dyn MemoryEngine) -> ObjectHandle {
        let bytes = self.graph().num_vertices as u64 * 8;
        let parents = engine.alloc("Parents", "bfs.rs:parents", bytes);
        engine.touch(parents, bytes);
        parents
    }

    fn build_graph(
        &self,
        engine: &mut dyn MemoryEngine,
    ) -> (ObjectHandle, ObjectHandle, ObjectHandle) {
        let offsets_bytes = self.graph().offsets_bytes();
        let edges_bytes = self.graph().edges_bytes();
        // The construction temporary: degree counters + permutation buffer
        // (kept alive by the original code due to an allocator performance
        // bug, per the paper).
        let temp_bytes = self.graph().num_vertices as u64 * 16;

        let offsets = engine.alloc("offsets", "bfs.rs:build", offsets_bytes);
        let edges = engine.alloc("edges", "bfs.rs:build", edges_bytes);
        let temp = engine.alloc("build-temp", "bfs.rs:build", temp_bytes);

        // Graph construction: histogram degrees into the temporary, then fill
        // offsets and edge lists.
        engine.touch(temp, temp_bytes);
        engine.access_range(temp, 0, temp_bytes, AccessKind::Read);
        engine.touch(offsets, offsets_bytes);
        engine.touch(edges, edges_bytes);
        (offsets, edges, temp)
    }

    /// Runs the BFS traversal phase against already-allocated graph arrays.
    fn traverse(
        &self,
        engine: &mut dyn MemoryEngine,
        offsets: ObjectHandle,
        edges: ObjectHandle,
        parents: ObjectHandle,
    ) {
        let g = self.graph();
        let mut parents_data = vec![u32::MAX; g.num_vertices];
        let mut frontier_generation = 0usize;

        for s in 0..self.params.sources {
            // Pick distinct high-degree roots.
            let mut roots: Vec<usize> = (0..g.num_vertices).collect();
            roots.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            let root = roots[s.min(roots.len() - 1)];
            if parents_data[root] != u32::MAX {
                continue;
            }
            parents_data[root] = root as u32;
            engine.access_range(parents, root as u64 * 8, 8, AccessKind::Write);

            let mut frontier = vec![root as u32];
            while !frontier.is_empty() {
                // Ligra allocates a fresh sparse frontier every level.
                frontier_generation += 1;
                let next_capacity_bytes = (frontier.len() as u64 * 8 * 4).max(4096);
                let next_frontier_obj = engine.alloc(
                    &format!("frontier-{frontier_generation}"),
                    "bfs.rs:edge_map",
                    next_capacity_bytes,
                );
                let mut next = Vec::new();
                let mut appended: u64 = 0;

                let mut parent_reads: Vec<u64> = Vec::new();
                let mut parent_writes: Vec<u64> = Vec::new();
                let mut frontier_appends: Vec<u64> = Vec::new();
                for &u in &frontier {
                    let u = u as usize;
                    // Read the two offsets bounding u's adjacency list: one
                    // contiguous 16-byte run through the bulk entry point.
                    engine.access_range(offsets, u as u64 * 8, 16, AccessKind::Read);
                    let neighbours = g.neighbours(u);
                    if !neighbours.is_empty() {
                        // Stream the adjacency slice.
                        engine.access_range(
                            edges,
                            g.offsets[u] * 4,
                            neighbours.len() as u64 * 4,
                            AccessKind::Read,
                        );
                    }
                    // Check the parents of all of u's neighbours: one bulk
                    // gather of random accesses into Parents.
                    parent_reads.clear();
                    parent_reads.extend(neighbours.iter().map(|&v| v as u64 * 8));
                    engine.gather(parents, &parent_reads, 8);
                    // Claim the undiscovered neighbours: one bulk scatter
                    // into Parents and one (sequential) scatter appending to
                    // the dynamically allocated next frontier.
                    parent_writes.clear();
                    frontier_appends.clear();
                    for &v in neighbours {
                        let v = v as usize;
                        if parents_data[v] == u32::MAX {
                            parents_data[v] = u as u32;
                            parent_writes.push(v as u64 * 8);
                            frontier_appends.push((appended * 8).min(next_capacity_bytes - 8));
                            appended += 1;
                            next.push(v as u32);
                        }
                    }
                    engine.scatter(parents, &parent_writes, 8);
                    engine.scatter(next_frontier_obj, &frontier_appends, 8);
                    engine.flops(neighbours.len() as u64);
                }

                engine.free(next_frontier_obj);
                frontier = next;
            }
        }
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn description(&self) -> &'static str {
        "Graph processing benchmark of breadth-first search in the Ligra framework"
    }

    fn parallelization(&self) -> &'static str {
        "OpenMP"
    }

    fn input_description(&self) -> String {
        format!(
            "symmetric rMat, N=2^{}, M≈{} ({})",
            self.params.log_vertices,
            self.params.edges(),
            self.params.optimization.label()
        )
    }

    fn expected_footprint_bytes(&self) -> u64 {
        let n = self.params.vertices();
        let m = self.params.edges();
        (n + 1) * 8 // offsets
            + m * 4 // edges
            + n * 8 // Parents
            + n * 16 // build temp
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let opt = self.params.optimization;

        engine.phase_start("p1-build");
        let (offsets, edges, temp, parents) = match opt {
            BfsOptimization::Baseline => {
                let (offsets, edges, temp) = self.build_graph(engine);
                let parents = self.alloc_parents(engine);
                (offsets, edges, temp, parents)
            }
            BfsOptimization::ReorderAllocations | BfsOptimization::ReorderAndFreeTemp => {
                // Hottest object first: with first-touch placement it lands in
                // node-local memory.
                let parents = self.alloc_parents(engine);
                let (offsets, edges, temp) = self.build_graph(engine);
                (offsets, edges, temp, parents)
            }
        };
        if opt == BfsOptimization::ReorderAndFreeTemp {
            // The paper's 1-line change: free the construction temporary so
            // local capacity is available for the dynamic frontiers.
            engine.free(temp);
        }
        engine.phase_end();

        engine.phase_start("p2-bfs");
        self.traverse(engine, offsets, edges, parents);
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    fn run(opt: BfsOptimization) -> TraceRecorder {
        let w = Bfs::new(BfsParams::tiny().with_optimization(opt));
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        rec
    }

    #[test]
    fn traversal_visits_most_of_the_graph() {
        let w = Bfs::new(BfsParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        // The BFS phase must read a significant share of the edge array.
        let p2 = &stats.phases[1];
        assert!(
            p2.bytes_read > w.graph().edges_bytes() / 2,
            "BFS read only {} bytes of a {}-byte edge array",
            p2.bytes_read,
            w.graph().edges_bytes()
        );
        // Graph processing has essentially no floating-point work.
        assert!(p2.arithmetic_intensity() < 0.2);
    }

    #[test]
    fn baseline_allocates_parents_after_graph() {
        let rec = run(BfsOptimization::Baseline);
        let order: Vec<_> = rec.allocations().iter().map(|a| a.name.clone()).collect();
        let parents_pos = order.iter().position(|n| n == "Parents").unwrap();
        let edges_pos = order.iter().position(|n| n == "edges").unwrap();
        assert!(parents_pos > edges_pos);
        // Temporary never freed in the baseline.
        let temp = rec
            .allocations()
            .iter()
            .find(|a| a.name == "build-temp")
            .unwrap();
        assert!(!temp.freed);
    }

    #[test]
    fn optimized_variant_allocates_parents_first_and_frees_temp() {
        let rec = run(BfsOptimization::ReorderAndFreeTemp);
        let order: Vec<_> = rec.allocations().iter().map(|a| a.name.clone()).collect();
        let parents_pos = order.iter().position(|n| n == "Parents").unwrap();
        let edges_pos = order.iter().position(|n| n == "edges").unwrap();
        assert!(parents_pos < edges_pos);
        let temp = rec
            .allocations()
            .iter()
            .find(|a| a.name == "build-temp")
            .unwrap();
        assert!(temp.freed);
    }

    #[test]
    fn frontiers_are_dynamically_allocated_and_freed() {
        let rec = run(BfsOptimization::Baseline);
        let frontiers: Vec<_> = rec
            .allocations()
            .iter()
            .filter(|a| a.name.starts_with("frontier-"))
            .collect();
        assert!(frontiers.len() >= 2, "expected one frontier per BFS level");
        assert!(frontiers.iter().all(|f| f.freed));
    }

    #[test]
    fn all_variants_do_the_same_traversal_work() {
        // The placement variant must not change how much work the traversal
        // itself does (only where the data lives).
        let base = run(BfsOptimization::Baseline).stats();
        let opt = run(BfsOptimization::ReorderAndFreeTemp).stats();
        assert_eq!(base.phases[1].bytes_read, opt.phases[1].bytes_read);
        assert_eq!(base.phases[1].flops, opt.phases[1].flops);
    }
}
