//! NekRS proxy: spectral-element computational fluid dynamics.
//!
//! Reproduces the memory behaviour of NekRS's `turbPipePeriodic` case: per
//! timestep, every spectral element gathers its local degrees of freedom,
//! applies small dense derivative operators (tensor contractions), and
//! scatters results back, while several mesh-sized field vectors are streamed.
//! The result is a memory-bound workload with mostly-sequential traffic
//! (high prefetch coverage) and a moderate random gather/scatter component —
//! the profile that makes NekRS one of the most interference-sensitive
//! applications in the paper.

use crate::workload::{InputScale, Workload};
use dismem_trace::{AccessKind, MemoryEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NekRS proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NekRsParams {
    /// Number of spectral elements.
    pub elements: usize,
    /// Polynomial order + 1 (points per direction within an element).
    pub poly_points: usize,
    /// Number of timesteps.
    pub timesteps: usize,
    /// RNG seed for the gather/scatter pattern.
    pub seed: u64,
}

impl NekRsParams {
    /// Simulation-friendly input sizes with the paper's 1:2:4 footprint ratio.
    pub fn bench(scale: InputScale) -> Self {
        let elements = match scale {
            InputScale::X1 => 1536,
            InputScale::X2 => 3072,
            InputScale::X4 => 6144,
        };
        Self {
            elements,
            poly_points: 8,
            timesteps: 5,
            seed: 0x5EC7,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            elements: 12,
            poly_points: 4,
            timesteps: 2,
            seed: 7,
        }
    }

    /// Points per element.
    pub fn points_per_element(&self) -> u64 {
        (self.poly_points * self.poly_points * self.poly_points) as u64
    }

    /// Total grid points.
    pub fn total_points(&self) -> u64 {
        self.points_per_element() * self.elements as u64
    }

    /// Bytes per field vector (one double per point).
    pub fn field_bytes(&self) -> u64 {
        self.total_points() * 8
    }
}

/// The NekRS proxy workload.
#[derive(Debug, Clone)]
pub struct NekRs {
    params: NekRsParams,
}

impl NekRs {
    /// Creates the workload.
    pub fn new(params: NekRsParams) -> Self {
        assert!(params.elements > 0 && params.poly_points >= 2 && params.timesteps >= 1);
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &NekRsParams {
        &self.params
    }
}

impl Workload for NekRs {
    fn name(&self) -> &'static str {
        "NekRS"
    }

    fn description(&self) -> &'static str {
        "Computational fluid dynamics based on the spectral element method"
    }

    fn parallelization(&self) -> &'static str {
        "MPI"
    }

    fn input_description(&self) -> String {
        format!(
            "{} elements, p={} ({} points), {} timesteps",
            self.params.elements,
            self.params.poly_points - 1,
            self.params.total_points(),
            self.params.timesteps
        )
    }

    fn expected_footprint_bytes(&self) -> u64 {
        // velocity (3 components), pressure, rhs, geometry factors, mask.
        7 * self.params.field_bytes()
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let p = &self.params;
        let fbytes = p.field_bytes();
        let elem_bytes = p.points_per_element() * 8;
        let mut rng = StdRng::seed_from_u64(p.seed);

        // Field allocations in the order a Nek-like code sets them up.
        let geom = engine.alloc("geometry-factors", "nekrs.rs:setup", fbytes);
        let vel_x = engine.alloc("velocity-x", "nekrs.rs:setup", fbytes);
        let vel_y = engine.alloc("velocity-y", "nekrs.rs:setup", fbytes);
        let vel_z = engine.alloc("velocity-z", "nekrs.rs:setup", fbytes);
        let pressure = engine.alloc("pressure", "nekrs.rs:setup", fbytes);
        let rhs = engine.alloc("rhs", "nekrs.rs:setup", fbytes);
        let mask = engine.alloc("gather-scatter-map", "nekrs.rs:setup", fbytes);
        // Small dense operator matrices (cache resident).
        let dmat = engine.alloc(
            "derivative-matrix",
            "nekrs.rs:setup",
            (p.poly_points * p.poly_points * 8) as u64,
        );

        // Phase 1: mesh setup and field initialization.
        engine.phase_start("p1-setup");
        for field in [geom, vel_x, vel_y, vel_z, pressure, rhs, mask] {
            engine.touch(field, fbytes);
        }
        engine.touch(dmat, (p.poly_points * p.poly_points * 8) as u64);
        engine.flops(12 * p.total_points());
        engine.phase_end();

        // Phase 2: timestepping (advection-diffusion style operator
        // evaluations element by element, plus gather/scatter exchange).
        engine.phase_start("p2-timestep");
        let pp = p.poly_points as u64;
        let tensor_flops_per_element = 12 * pp * pp * pp * pp;
        let boundary_points = (2 * p.poly_points * p.poly_points) as u64;
        let mut exchange: Vec<u64> = Vec::with_capacity((boundary_points / 16) as usize);
        for _step in 0..p.timesteps {
            for e in 0..p.elements {
                let off = e as u64 * elem_bytes;
                // Element-local operator evaluation: stream the element's
                // slice of each field, read the small derivative matrix.
                engine.access_range(geom, off, elem_bytes, AccessKind::Read);
                engine.access_range(vel_x, off, elem_bytes, AccessKind::Read);
                engine.access_range(vel_y, off, elem_bytes, AccessKind::Read);
                engine.access_range(vel_z, off, elem_bytes, AccessKind::Read);
                engine.access_range(
                    dmat,
                    0,
                    (p.poly_points * p.poly_points * 8) as u64,
                    AccessKind::Read,
                );
                engine.access_range(rhs, off, elem_bytes, AccessKind::Write);
                engine.flops(tensor_flops_per_element);

                // Gather/scatter: exchange face values with randomly chosen
                // neighbouring elements — one bulk gather of indirect
                // accesses into the mask map per element (same offsets in
                // the same order as the per-point loop it replaces).
                exchange.clear();
                for _ in 0..boundary_points / 16 {
                    let neighbour = rng.gen_range(0..p.elements) as u64;
                    let point = rng.gen_range(0..p.points_per_element());
                    exchange.push(neighbour * elem_bytes + point * 8);
                }
                engine.gather(mask, &exchange, 8);
            }
            // Pressure solve iteration: stream pressure and rhs once.
            engine.access_range(pressure, 0, fbytes, AccessKind::Read);
            engine.access_range(rhs, 0, fbytes, AccessKind::Read);
            engine.access_range(pressure, 0, fbytes, AccessKind::Write);
            engine.flops(6 * p.total_points());
        }
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn timestep_phase_is_memory_bound_but_not_trivially_so() {
        let w = NekRs::new(NekRsParams::tiny());
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let stats = rec.stats();
        let p2 = &stats.phases[1];
        let ai = p2.arithmetic_intensity();
        assert!(
            ai > 0.2 && ai < 6.0,
            "NekRS AI should be moderate, got {ai}"
        );
    }

    #[test]
    fn traffic_scales_with_timesteps() {
        let run = |timesteps| {
            let w = NekRs::new(NekRsParams {
                timesteps,
                ..NekRsParams::tiny()
            });
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            let p = &rec.stats().phases[1];
            p.bytes_read + p.bytes_written
        };
        let t1 = run(1);
        let t3 = run(3);
        assert!((t3 as f64 / t1 as f64 - 3.0).abs() < 0.1);
    }

    #[test]
    fn footprint_is_seven_fields() {
        let p = NekRsParams::tiny();
        let w = NekRs::new(p);
        let mut rec = TraceRecorder::new();
        w.run(&mut rec);
        let fp = rec.stats().peak_footprint_bytes;
        assert!(fp >= 7 * p.field_bytes());
        assert!(fp < 8 * p.field_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let w = NekRs::new(NekRsParams::tiny());
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            rec.stats().bytes_read
        };
        assert_eq!(run(), run());
    }
}
