//! The six proxy applications of the paper's evaluation (Table 2), plus the
//! phase-shifting working-set proxy used by the dynamic-tiering studies.

pub mod bfs;
pub mod hpl;
pub mod hypre;
pub mod nekrs;
pub mod phaseshift;
pub mod superlu;
pub mod xsbench;
