//! The six proxy applications of the paper's evaluation (Table 2).

pub mod bfs;
pub mod hpl;
pub mod hypre;
pub mod nekrs;
pub mod superlu;
pub mod xsbench;
