//! # dismem-workloads
//!
//! Proxy implementations of the six HPC applications evaluated in the paper
//! (Table 2): HPL, Hypre, NekRS, BFS (Ligra), SuperLU and XSBench.
//!
//! The proxies are *memory-behaviour* reproductions, not numerical ones: they
//! allocate the same kinds of data structures in the same order, walk them
//! with the same access patterns (blocked dense sweeps, stencil sweeps,
//! element-local tensor work with gather/scatter, frontier-driven graph
//! traversal, supernodal panel updates, Monte-Carlo table lookups) and issue
//! a realistic number of floating-point operations, so that arithmetic
//! intensity, footprint-vs-access skew, prefetch friendliness, phase
//! structure and tier access ratios all come out with the paper's shape.
//!
//! Every workload is written against [`dismem_trace::MemoryEngine`], so the
//! same code runs on the full simulator (`dismem-sim`) or the lightweight
//! trace recorder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod generators;
pub mod workload;

pub use apps::bfs::{Bfs, BfsOptimization, BfsParams};
pub use apps::hpl::{Hpl, HplParams};
pub use apps::hypre::{Hypre, HypreParams};
pub use apps::nekrs::{NekRs, NekRsParams};
pub use apps::phaseshift::{PhaseShift, PhaseShiftParams};
pub use apps::superlu::{SuperLu, SuperLuParams};
pub use apps::xsbench::{XsBench, XsBenchParams};
pub use workload::{InputScale, Workload, WorkloadKind};
