//! Input generators for the proxy workloads: R-MAT graphs (BFS) and
//! supernodal sparsity structures (SuperLU).

pub mod rmat;
pub mod supernodes;

pub use rmat::{rmat_graph, CsrGraph};
pub use supernodes::{generate_supernodes, Supernode, SupernodeStructure};
