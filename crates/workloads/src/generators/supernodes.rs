//! Synthetic supernodal sparsity structures for the SuperLU proxy.
//!
//! Sparse LU factorization groups columns with identical sparsity patterns
//! into supernodes (dense column panels). During factorization each supernode
//! is factored as a dense panel and then updates a set of later supernodes
//! (its ancestors in the elimination DAG). The generator below produces a
//! structure with the qualitative properties of matrices like the paper's
//! SiO / H2O / Si34H36 inputs: panel heights grow towards the end of the
//! factorization (fill-in accumulates) and each supernode updates a handful
//! of mostly-nearby later supernodes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One supernode (dense column panel) of the factor.
#[derive(Debug, Clone)]
pub struct Supernode {
    /// First column of the panel.
    pub start_col: usize,
    /// Number of columns in the panel.
    pub width: usize,
    /// Number of rows in the panel (diagonal block plus below-diagonal rows).
    pub height: usize,
    /// Offset (in elements) of this panel inside the packed factor array.
    pub panel_offset: u64,
    /// Indices of later supernodes updated by this panel.
    pub updates: Vec<usize>,
}

impl Supernode {
    /// Elements stored for this panel.
    pub fn elements(&self) -> u64 {
        (self.width * self.height) as u64
    }

    /// Dense factorization flops for this panel plus its updates
    /// (`~ width^2 * height` for the panel factorization and a rank-`width`
    /// update per target).
    pub fn factor_flops(&self) -> u64 {
        (2 * self.width * self.width * self.height) as u64
    }
}

/// A full supernodal structure.
#[derive(Debug, Clone)]
pub struct SupernodeStructure {
    /// Supernodes in elimination order.
    pub supernodes: Vec<Supernode>,
    /// Total number of columns in the matrix.
    pub num_cols: usize,
    /// Total elements in the packed factor (L + U) array.
    pub factor_elements: u64,
    /// Non-zeros of the original matrix A (before fill-in).
    pub matrix_nnz: u64,
}

impl SupernodeStructure {
    /// Bytes of the packed factor array (f64 elements).
    pub fn factor_bytes(&self) -> u64 {
        self.factor_elements * 8
    }

    /// Bytes of the original matrix (values + indices, ~12 bytes/nnz).
    pub fn matrix_bytes(&self) -> u64 {
        self.matrix_nnz * 12
    }

    /// Total factorization flops.
    pub fn total_flops(&self) -> u64 {
        self.supernodes.iter().map(|s| s.factor_flops()).sum()
    }
}

/// Generates a supernodal structure.
///
/// * `num_cols` — matrix dimension;
/// * `avg_width` — average supernode width (columns per panel);
/// * `fill_growth` — how quickly panel heights grow towards the end of the
///   elimination (0.0 = constant height, 1.0 = strong fill-in);
/// * `seed` — RNG seed.
pub fn generate_supernodes(
    num_cols: usize,
    avg_width: usize,
    fill_growth: f64,
    seed: u64,
) -> SupernodeStructure {
    assert!(num_cols > 0 && avg_width > 0, "empty structure requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut supernodes = Vec::new();
    let mut col = 0usize;
    let mut offset = 0u64;

    while col < num_cols {
        let jitter = rng.gen_range(0.5..1.5);
        let width = ((avg_width as f64 * jitter) as usize).clamp(1, num_cols - col);
        // Height: remaining columns below the diagonal shrink towards the end,
        // but fill-in makes panels denser relative to the remaining size.
        let remaining = num_cols - col;
        let progress = col as f64 / num_cols as f64;
        let density = 0.02 + fill_growth * 0.04 * progress;
        let below = ((remaining as f64) * density) as usize;
        let height = width + below.min(remaining);
        supernodes.push(Supernode {
            start_col: col,
            width,
            height,
            panel_offset: offset,
            updates: Vec::new(),
        });
        offset += (width * height) as u64;
        col += width;
    }

    // Each supernode updates a handful of later supernodes: mostly its
    // immediate successors (elimination-tree parent chain) plus a few farther
    // ones.
    let count = supernodes.len();
    for (i, supernode) in supernodes.iter_mut().enumerate() {
        let mut updates = Vec::new();
        let max_targets = (count - i - 1).min(12);
        if max_targets > 0 {
            let near = max_targets.min(3 + (rng.gen_range(0..3)));
            for t in 1..=near {
                updates.push(i + t);
            }
            // A few scattered distant updates.
            let far = rng.gen_range(0..3.min(max_targets));
            for _ in 0..far {
                let target = rng.gen_range(i + 1..count);
                if !updates.contains(&target) {
                    updates.push(target);
                }
            }
        }
        supernode.updates = updates;
    }

    let factor_elements = offset;
    let matrix_nnz = (factor_elements / 4).max(num_cols as u64);
    SupernodeStructure {
        supernodes,
        num_cols,
        factor_elements,
        matrix_nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_columns_without_overlap() {
        let s = generate_supernodes(5000, 24, 0.5, 11);
        let mut col = 0;
        for sn in &s.supernodes {
            assert_eq!(sn.start_col, col, "panels must tile the columns");
            col += sn.width;
        }
        assert_eq!(col, 5000);
        assert_eq!(s.num_cols, 5000);
    }

    #[test]
    fn panel_offsets_are_packed() {
        let s = generate_supernodes(2000, 16, 0.5, 3);
        let mut expected = 0u64;
        for sn in &s.supernodes {
            assert_eq!(sn.panel_offset, expected);
            expected += sn.elements();
        }
        assert_eq!(s.factor_elements, expected);
        assert!(s.factor_bytes() > s.matrix_bytes() / 4);
    }

    #[test]
    fn updates_point_forward_only() {
        let s = generate_supernodes(3000, 20, 0.6, 5);
        for (i, sn) in s.supernodes.iter().enumerate() {
            for &t in &sn.updates {
                assert!(t > i, "update targets must come later in elimination order");
                assert!(t < s.supernodes.len());
            }
        }
        // The last supernode has no one left to update.
        assert!(s.supernodes.last().unwrap().updates.is_empty());
    }

    #[test]
    fn heights_are_at_least_width() {
        let s = generate_supernodes(1000, 8, 0.3, 1);
        for sn in &s.supernodes {
            assert!(sn.height >= sn.width);
            assert!(sn.elements() > 0);
        }
        assert!(s.total_flops() > 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_supernodes(1000, 8, 0.5, 42);
        let b = generate_supernodes(1000, 8, 0.5, 42);
        assert_eq!(a.factor_elements, b.factor_elements);
        assert_eq!(a.supernodes.len(), b.supernodes.len());
    }

    #[test]
    fn fill_growth_increases_factor_size() {
        let low = generate_supernodes(4000, 16, 0.1, 7);
        let high = generate_supernodes(4000, 16, 1.0, 7);
        assert!(high.factor_elements > low.factor_elements);
    }

    #[test]
    #[should_panic(expected = "empty structure")]
    fn rejects_empty_input() {
        let _ = generate_supernodes(0, 8, 0.5, 0);
    }
}
