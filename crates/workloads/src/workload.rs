//! The [`Workload`] trait, input scales and the workload registry (Table 2).

use dismem_trace::MemoryEngine;
use serde::{Deserialize, Serialize};

/// Input-problem scale. The paper evaluates three input problems per
/// application with an approximately 1 : 2 : 4 memory-usage ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputScale {
    /// Baseline input (×1).
    X1,
    /// Roughly doubled memory usage (×2).
    X2,
    /// Roughly quadrupled memory usage (×4).
    X4,
}

impl InputScale {
    /// All scales in increasing order.
    pub fn all() -> [InputScale; 3] {
        [InputScale::X1, InputScale::X2, InputScale::X4]
    }

    /// Multiplier relative to the ×1 input.
    pub fn factor(self) -> u64 {
        match self {
            InputScale::X1 => 1,
            InputScale::X2 => 2,
            InputScale::X4 => 4,
        }
    }

    /// Label used in the paper's figures (`x1`, `x2`, `x4`).
    pub fn label(self) -> &'static str {
        match self {
            InputScale::X1 => "x1",
            InputScale::X2 => "x2",
            InputScale::X4 => "x4",
        }
    }
}

/// A proxy HPC application that can run on any [`MemoryEngine`].
///
/// Implementations are `Send + Sync` so parameter sweeps and scheduling
/// campaigns can run independent simulations in parallel.
pub trait Workload: Send + Sync {
    /// Short workload name as used in the paper's figures ("HPL", "BFS", ...).
    fn name(&self) -> &'static str;

    /// One-line description (Table 2).
    fn description(&self) -> &'static str;

    /// Parallelization model of the original application (Table 2).
    fn parallelization(&self) -> &'static str {
        "MPI+OpenMP"
    }

    /// Description of the configured input problem.
    fn input_description(&self) -> String;

    /// Estimated peak memory footprint in bytes for the configured input.
    /// Used to derive the local-tier capacity for pooling experiments without
    /// a prior profiling run.
    fn expected_footprint_bytes(&self) -> u64;

    /// Runs the workload against a memory engine, issuing allocations, phase
    /// markers, memory accesses and flops.
    fn run(&self, engine: &mut dyn MemoryEngine);
}

/// The set of applications evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// High Performance LINPACK: dense LU factorization with partial pivoting.
    Hpl,
    /// Hypre: structured-interface linear solvers (stencil relaxation).
    Hypre,
    /// NekRS: spectral-element computational fluid dynamics.
    NekRs,
    /// Ligra breadth-first search on an R-MAT graph.
    Bfs,
    /// SuperLU: supernodal sparse LU factorization.
    SuperLu,
    /// XSBench: Monte Carlo neutron-transport cross-section lookup proxy.
    XsBench,
}

impl WorkloadKind {
    /// All workloads in the paper's usual presentation order.
    pub fn all() -> [WorkloadKind; 6] {
        [
            WorkloadKind::Hpl,
            WorkloadKind::Hypre,
            WorkloadKind::NekRs,
            WorkloadKind::Bfs,
            WorkloadKind::SuperLu,
            WorkloadKind::XsBench,
        ]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Hpl => "HPL",
            WorkloadKind::Hypre => "Hypre",
            WorkloadKind::NekRs => "NekRS",
            WorkloadKind::Bfs => "BFS",
            WorkloadKind::SuperLu => "SuperLU",
            WorkloadKind::XsBench => "XSBench",
        }
    }

    /// Abbreviation used in some of the paper's figures (e.g. `XS`, `Nek`).
    pub fn short_name(self) -> &'static str {
        match self {
            WorkloadKind::Hpl => "HPL",
            WorkloadKind::Hypre => "Hypre",
            WorkloadKind::NekRs => "Nek",
            WorkloadKind::Bfs => "BFS",
            WorkloadKind::SuperLu => "SuperLU",
            WorkloadKind::XsBench => "XS",
        }
    }

    /// Instantiates the workload at a given scale with benchmark-sized
    /// (simulation-friendly) inputs.
    pub fn instantiate(self, scale: InputScale) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Hpl => Box::new(crate::Hpl::new(crate::HplParams::bench(scale))),
            WorkloadKind::Hypre => Box::new(crate::Hypre::new(crate::HypreParams::bench(scale))),
            WorkloadKind::NekRs => Box::new(crate::NekRs::new(crate::NekRsParams::bench(scale))),
            WorkloadKind::Bfs => Box::new(crate::Bfs::new(crate::BfsParams::bench(scale))),
            WorkloadKind::SuperLu => {
                Box::new(crate::SuperLu::new(crate::SuperLuParams::bench(scale)))
            }
            WorkloadKind::XsBench => {
                Box::new(crate::XsBench::new(crate::XsBenchParams::bench(scale)))
            }
        }
    }

    /// Instantiates all six paper workloads at `scale`, in presentation
    /// order — the suite the pooled-configuration studies (tiering campaigns,
    /// scheduling sweeps) iterate over.
    pub fn instantiate_all(scale: InputScale) -> Vec<Box<dyn Workload>> {
        Self::all()
            .into_iter()
            .map(|kind| kind.instantiate(scale))
            .collect()
    }

    /// Instantiates a deliberately tiny configuration for unit and
    /// integration tests (runs in milliseconds even on the full simulator in
    /// debug builds).
    pub fn instantiate_tiny(self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Hpl => Box::new(crate::Hpl::new(crate::HplParams::tiny())),
            WorkloadKind::Hypre => Box::new(crate::Hypre::new(crate::HypreParams::tiny())),
            WorkloadKind::NekRs => Box::new(crate::NekRs::new(crate::NekRsParams::tiny())),
            WorkloadKind::Bfs => Box::new(crate::Bfs::new(crate::BfsParams::tiny())),
            WorkloadKind::SuperLu => Box::new(crate::SuperLu::new(crate::SuperLuParams::tiny())),
            WorkloadKind::XsBench => Box::new(crate::XsBench::new(crate::XsBenchParams::tiny())),
        }
    }

    /// The input problems listed in the paper's Table 2 for this application.
    pub fn paper_inputs(self) -> [&'static str; 3] {
        match self {
            WorkloadKind::Hpl => ["N=20000", "N=28280", "N=40000"],
            WorkloadKind::Hypre => [
                "ex4 10 times, n=6300, ranks=1",
                "ex4 10 times, n=6300, ranks=2",
                "ex4 10 times, n=6300, ranks=4",
            ],
            WorkloadKind::NekRs => [
                "turbPipePeriodic, p=5, dt=1e-2",
                "turbPipePeriodic, p=7, dt=6e-3",
                "turbPipePeriodic, p=9, dt=1e-3",
            ],
            WorkloadKind::Bfs => [
                "symmetric rMat, N=2^24, M=2^28.24",
                "symmetric rMat, N=2^25, M=2^29.25",
                "symmetric rMat, N=2^26, M=2^30.25",
            ],
            WorkloadKind::SuperLu => ["SiO (nnz=1.3M)", "H2O (nnz=2.2M)", "Si34H36 (nnz=5.2M)"],
            WorkloadKind::XsBench => [
                "large, 2M particles, 11303 gridpoints",
                "large, 2M particles, 22606 gridpoints",
                "large, 2M particles, 45212 gridpoints",
            ],
        }
    }

    /// Parallelization column of Table 2.
    pub fn parallelization(self) -> &'static str {
        match self {
            WorkloadKind::Bfs => "OpenMP",
            WorkloadKind::NekRs => "MPI",
            _ => "MPI+OpenMP",
        }
    }

    /// Description column of Table 2.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadKind::Hpl => {
                "High Performance LINPACK benchmark, dense LU factorization with partial pivoting"
            }
            WorkloadKind::Hypre => {
                "Library of high-performance linear solvers (structured interface)"
            }
            WorkloadKind::NekRs => {
                "Computational fluid dynamics based on the spectral element method"
            }
            WorkloadKind::Bfs => {
                "Graph processing benchmark of breadth-first search in the Ligra framework"
            }
            WorkloadKind::SuperLu => "Sparse LU factorization",
            WorkloadKind::XsBench => "Monte Carlo neutron transport proxy application",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::TraceRecorder;

    #[test]
    fn scales_have_doubling_factors() {
        assert_eq!(InputScale::X1.factor(), 1);
        assert_eq!(InputScale::X2.factor(), 2);
        assert_eq!(InputScale::X4.factor(), 4);
        assert_eq!(InputScale::all().len(), 3);
        assert_eq!(InputScale::X2.label(), "x2");
    }

    #[test]
    fn registry_lists_all_six_paper_workloads() {
        let kinds = WorkloadKind::all();
        assert_eq!(kinds.len(), 6);
        let names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        for expected in ["HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_tiny_workload_runs_on_the_recorder() {
        for kind in WorkloadKind::all() {
            let w = kind.instantiate_tiny();
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            let stats = rec.stats();
            assert!(
                stats.bytes_read + stats.bytes_written > 0,
                "{} moved no data",
                w.name()
            );
            assert!(
                stats.phases.len() >= 2,
                "{} must have at least two phases (init + compute)",
                w.name()
            );
            assert!(stats.peak_footprint_bytes > 0);
        }
    }

    #[test]
    fn instantiate_all_matches_the_registry_order() {
        let suite = WorkloadKind::instantiate_all(InputScale::X1);
        assert_eq!(suite.len(), 6);
        for (w, kind) in suite.iter().zip(WorkloadKind::all()) {
            assert_eq!(w.name(), kind.name());
            assert!(w.expected_footprint_bytes() > 0);
        }
    }

    #[test]
    fn table2_metadata_is_present() {
        for kind in WorkloadKind::all() {
            assert!(!kind.description().is_empty());
            assert!(!kind.parallelization().is_empty());
            assert_eq!(kind.paper_inputs().len(), 3);
        }
        assert_eq!(WorkloadKind::Bfs.parallelization(), "OpenMP");
        assert_eq!(WorkloadKind::XsBench.short_name(), "XS");
    }

    #[test]
    fn footprint_estimates_scale_with_input() {
        for kind in WorkloadKind::all() {
            let f1 = kind.instantiate(InputScale::X1).expected_footprint_bytes();
            let f2 = kind.instantiate(InputScale::X2).expected_footprint_bytes();
            let f4 = kind.instantiate(InputScale::X4).expected_footprint_bytes();
            assert!(
                f2 as f64 >= 1.5 * f1 as f64 && f2 as f64 <= 2.8 * f1 as f64,
                "{}: x2 footprint {} not ~2x of {}",
                kind.name(),
                f2,
                f1
            );
            assert!(
                f4 as f64 >= 3.0 * f1 as f64 && f4 as f64 <= 5.5 * f1 as f64,
                "{}: x4 footprint {} not ~4x of {}",
                kind.name(),
                f4,
                f1
            );
        }
    }

    #[test]
    fn recorder_footprint_roughly_matches_estimate() {
        // The declared estimate should be within a factor of two of what the
        // workload actually allocates (checked on the tiny configs).
        for kind in WorkloadKind::all() {
            let w = kind.instantiate_tiny();
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            let actual = rec.stats().peak_footprint_bytes as f64;
            let estimate = w.expected_footprint_bytes() as f64;
            let ratio = estimate / actual;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: estimate {estimate} vs actual {actual} (ratio {ratio})",
                w.name()
            );
        }
    }
}
