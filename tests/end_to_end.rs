//! Cross-crate integration tests: run the whole methodology end to end on
//! small inputs and check that the paper's qualitative findings hold.

use dismem::core::{bfs_placement_study, derive_guidance, QuantitativeStudy};
use dismem::lbench::{app_interference_coefficient, LBenchKernel, LBenchModel, LBenchParams};
use dismem::profiler::level3::PAPER_LOI_LEVELS;
use dismem::profiler::{pooled_config, run_workload, RunOptions};
use dismem::sched::{campaign::compare_policies, CampaignConfig};
use dismem::sim::{InterferenceProfile, Machine, MachineConfig};
use dismem::workloads::{BfsOptimization, BfsParams, Workload, WorkloadKind};

fn config() -> MachineConfig {
    MachineConfig::test_config()
}

#[test]
fn remote_access_grows_as_local_capacity_shrinks_for_every_workload() {
    for kind in WorkloadKind::all() {
        let study = QuantitativeStudy::new(kind.instantiate_tiny(), config());
        let roomy = study.level2(0.75);
        let tight = study.level2(0.25);
        assert!(
            tight.remote_access_ratio >= roomy.remote_access_ratio - 1e-9,
            "{}: remote access should not shrink when local capacity shrinks ({} vs {})",
            kind.name(),
            tight.remote_access_ratio,
            roomy.remote_access_ratio
        );
        assert!(tight.remote_capacity_ratio > roomy.remote_capacity_ratio);
    }
}

#[test]
fn xsbench_keeps_remote_access_low_in_all_configurations() {
    // Section 5.1: XSBench's remote access ratio stays very low because its
    // hot structures are small and allocated first. On the tiny test inputs
    // the ratio is not as extreme as the paper's <6%, so the check is that it
    // stays well below the other workloads and below the capacity ratio.
    let xs = QuantitativeStudy::new(WorkloadKind::XsBench.instantiate_tiny(), config());
    let hypre = QuantitativeStudy::new(WorkloadKind::Hypre.instantiate_tiny(), config());
    let bfs = QuantitativeStudy::new(WorkloadKind::Bfs.instantiate_tiny(), config());
    for fraction in [0.75, 0.5, 0.25] {
        let xs_l2 = xs.level2(fraction);
        assert!(
            xs_l2.remote_access_ratio < 0.45,
            "XSBench remote access ratio {} too high at {} local",
            xs_l2.remote_access_ratio,
            fraction
        );
        assert!(
            xs_l2.remote_access_ratio <= xs_l2.remote_capacity_ratio + 0.05,
            "XSBench accesses the pool less than its share of capacity"
        );
        assert!(xs_l2.remote_access_ratio < hypre.level2(fraction).remote_access_ratio);
        assert!(xs_l2.remote_access_ratio < bfs.level2(fraction).remote_access_ratio);
    }
}

#[test]
fn memory_bound_workloads_are_most_interference_sensitive() {
    // Section 6.1: Hypre/NekRS most sensitive, HPL and XSBench least.
    let slowdown = |kind: WorkloadKind| {
        let study = QuantitativeStudy::new(kind.instantiate_tiny(), config());
        study.level3(0.5, &PAPER_LOI_LEVELS).max_slowdown_percent()
    };
    let hypre = slowdown(WorkloadKind::Hypre);
    let nekrs = slowdown(WorkloadKind::NekRs);
    let hpl = slowdown(WorkloadKind::Hpl);
    let xs = slowdown(WorkloadKind::XsBench);
    assert!(hypre > hpl, "Hypre {hypre} vs HPL {hpl}");
    assert!(nekrs > xs, "NekRS {nekrs} vs XSBench {xs}");
}

#[test]
fn sensitivity_decreases_monotonically_with_interference_for_all_workloads() {
    for kind in WorkloadKind::all() {
        let study = QuantitativeStudy::new(kind.instantiate_tiny(), config());
        let l3 = study.level3(0.25, &PAPER_LOI_LEVELS);
        for w in l3.sensitivity.windows(2) {
            assert!(
                w[1].relative_performance <= w[0].relative_performance + 1e-9,
                "{}: performance should not improve with more interference",
                kind.name()
            );
        }
    }
}

#[test]
fn prefetching_helps_streaming_workloads_more_than_random_lookups() {
    let gain = |kind: WorkloadKind| {
        QuantitativeStudy::new(kind.instantiate_tiny(), config())
            .level1()
            .prefetch
            .performance_gain
    };
    let hypre = gain(WorkloadKind::Hypre);
    let xs = gain(WorkloadKind::XsBench);
    assert!(
        hypre > xs + 0.02,
        "prefetch gain: Hypre {hypre} should exceed XSBench {xs}"
    );
    assert!(
        hypre > 0.05,
        "streaming workload should gain from prefetching"
    );
}

#[test]
fn bfs_case_study_reproduces_the_paper_shape() {
    let study = bfs_placement_study(BfsParams::tiny(), &config(), &[0.75], &[0.0, 25.0, 50.0]);
    let base = study.get(BfsOptimization::Baseline, 0.75).unwrap();
    let opt = study
        .get(BfsOptimization::ReorderAndFreeTemp, 0.75)
        .unwrap();
    assert!(base.remote_access_ratio > opt.remote_access_ratio);
    assert!(base.runtime_s > opt.runtime_s);
    assert!(study.speedup_percent(0.75).unwrap() > 0.0);
}

#[test]
fn interference_aware_scheduling_reduces_variability() {
    let campaign = CampaignConfig {
        runs: 25,
        epochs_per_run: 5,
        seed: 99,
    };
    for kind in [WorkloadKind::Hypre, WorkloadKind::Bfs] {
        let w = kind.instantiate_tiny();
        let cfg = pooled_config(&config(), w.as_ref(), 0.5);
        let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
        let cmp = compare_policies(kind.name(), &report, &campaign);
        assert!(cmp.aware.summary.q3 <= cmp.baseline.summary.q3 + 1e-12);
        assert!(cmp.mean_speedup_percent() >= -0.5);
    }
}

#[test]
fn lbench_injects_interference_that_hurts_pool_bound_workloads() {
    // Close the loop: calibrate LBench for a target LoI, inject that LoI into
    // a pooled Hypre run, and observe the slowdown.
    let cfg = config();
    let model = LBenchModel::from_config(&cfg);
    let cal = model.calibrate(40.0, 2);
    assert!(cal.measured_loi_percent > 20.0);

    let w = WorkloadKind::Hypre.instantiate_tiny();
    let pooled = pooled_config(&cfg, w.as_ref(), 0.25);
    let idle = run_workload(w.as_ref(), &RunOptions::new(pooled.clone()));
    let busy = run_workload(
        w.as_ref(),
        &RunOptions::new(pooled).with_interference(InterferenceProfile::constant_percent(
            cal.measured_loi_percent,
        )),
    );
    assert!(busy.total_runtime_s > idle.total_runtime_s);
}

#[test]
fn lbench_kernel_and_coefficient_are_consistent() {
    // An application that streams the pool heavily should have a larger IC
    // than LBench at high flops-per-element.
    let cfg = config();
    let model = LBenchModel::from_config(&cfg);

    let mut machine = Machine::new(cfg.clone());
    let kernel = LBenchKernel::new(LBenchParams::tiny());
    kernel.run(&mut machine);
    let report = machine.finish();
    let (ic, _) = app_interference_coefficient(&report, &model, "LBench");
    assert!(ic.coefficient >= 1.0);
    assert!(report.remote_access_ratio() > 0.99);
}

#[test]
fn guidance_distinguishes_compute_bound_from_memory_bound_workloads() {
    let guidance_for = |kind: WorkloadKind| {
        let study = QuantitativeStudy::new(kind.instantiate_tiny(), config());
        derive_guidance(&study.level2(0.25), &study.level3(0.25, &PAPER_LOI_LEVELS))
    };
    let hpl = guidance_for(WorkloadKind::Hpl);
    let hypre = guidance_for(WorkloadKind::Hypre);
    // HPL tolerates the pool better than Hypre.
    assert!(hpl.max_slowdown_percent <= hypre.max_slowdown_percent);
    assert!(!hpl.notes.is_empty() && !hypre.notes.is_empty());
}

#[test]
fn full_study_serializes_to_json() {
    let study = QuantitativeStudy::new(WorkloadKind::SuperLu.instantiate_tiny(), config());
    let report = study.full_study(&[0.5]);
    let json = serde_json::to_string(&report).expect("study must serialize");
    assert!(json.contains("SuperLU"));
    assert!(json.contains("sensitivity"));
    let phases_total: usize = report.level2.iter().map(|l| l.phases.len()).sum();
    assert!(phases_total >= 3, "SuperLU has three phases");
}

#[test]
fn every_workload_runs_on_the_paper_testbed_configuration() {
    // Smoke-test the full (non-scaled) Skylake configuration too.
    for kind in WorkloadKind::all() {
        let w = kind.instantiate_tiny();
        let report = run_workload(
            w.as_ref(),
            &RunOptions::new(MachineConfig::skylake_testbed()),
        );
        assert!(report.total_runtime_s > 0.0);
        assert_eq!(
            report.total.l2_lines_in,
            report.total.l2_demand_misses + report.total.pf_issued,
            "{}: fill conservation must hold",
            kind.name()
        );
    }
}
