//! Property-based tests (proptest) of core invariants across the workspace.

use dismem::analysis::{five_number_summary, percentile, Roofline};
use dismem::sim::tiering::{HotPromote, PeriodicRebalance};
use dismem::sim::{InterferenceProfile, Machine, MachineConfig, Tier, TieringSpec};
use dismem::trace::{
    AccessKind, FlightRecorder, MemoryEngine, PageHistogram, PlacementPolicy, TraceEvent, PAGE_SIZE,
};
use proptest::prelude::*;

/// A small synthetic access script: (offset pages, length bytes, write?).
fn access_script() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    prop::collection::vec((0u64..64, 1u64..16_384, any::<bool>()), 1..40)
}

/// A mixed bulk-access script: per step `(op, page, len, count, flag)`.
fn bulk_script() -> impl Strategy<Value = Vec<(u8, u64, u64, u64, bool)>> {
    prop::collection::vec(
        (0u8..6, 0u64..48, 1u64..16_384, 1u64..24, any::<bool>()),
        1..24,
    )
}

/// Replays one mixed script of bulk and scalar engine calls on a machine.
///
/// `big_cache` switches from the tiny test hierarchy (32 L2 sets) to the
/// production `scaled_emulation` geometry (512 L2 sets, 2 MiB LLC) — the
/// batched pipeline takes geometry-dependent shortcuts, so the equivalence
/// guarantee must be exercised on both shapes.
fn run_bulk_script(
    script: &[(u8, u64, u64, u64, bool)],
    batched: bool,
    big_cache: bool,
) -> dismem::sim::RunReport {
    let mut config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    if big_cache {
        config.cache = dismem::sim::CacheParams::scaled_emulation();
    }
    let mut m = Machine::new(config);
    m.set_batched_access(batched);
    let obj_pages = 64u64;
    let a = m.alloc("a", "prop", obj_pages * PAGE_SIZE);
    let b = m.alloc_with_policy(
        "b",
        "prop",
        obj_pages * PAGE_SIZE,
        PlacementPolicy::ForceRemote,
    );
    let temp = m.alloc("temp", "prop", 8 * PAGE_SIZE);
    m.phase_start("mixed");
    m.touch(temp, 8 * PAGE_SIZE);
    for (i, &(op, page, len, count, flag)) in script.iter().enumerate() {
        let handle = if flag { a } else { b };
        let kind = if page % 2 == 0 {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        let offset = page * PAGE_SIZE;
        let len = len.min(obj_pages * PAGE_SIZE - offset);
        match op {
            0 => m.access_range(handle, offset, len, kind),
            1 => {
                // Scattered offsets spread pseudo-randomly over the object.
                let offs: Vec<u64> = (0..count)
                    .map(|k| {
                        ((page + 3 * k + 7 * k * k) * 2048 + 8 * k) % (obj_pages * PAGE_SIZE - 8)
                    })
                    .collect();
                m.gather(handle, &offs, 8);
            }
            2 => {
                let offs: Vec<u64> = (0..count)
                    .map(|k| {
                        ((page + 5 * k + k * k) * 4096 + 16 * k) % (obj_pages * PAGE_SIZE - 16)
                    })
                    .collect();
                m.scatter(handle, &offs, 8);
            }
            3 => {
                let stride = 64 + (len % 1024);
                let count = count.min((obj_pages * PAGE_SIZE - offset) / stride.max(1));
                if count > 0 {
                    m.strided(handle, offset, count, 8, stride, kind);
                }
            }
            4 => m.flops(len * 1000),
            _ => m.access(handle, offset, len.min(256), kind),
        }
        if i == script.len() / 2 {
            // Free mid-script so freed-page reuse is exercised on both paths.
            m.free(temp);
        }
    }
    m.phase_end();
    m.finish()
}

/// How a machine executes accesses in the replay equivalence tests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pipeline {
    /// Per-line reference path.
    PerLine,
    /// Batched line walk, replay engine off.
    Batched,
    /// Batched line walk with steady-state page replay (the default).
    Replay,
}

impl Pipeline {
    fn configure(self, m: &mut Machine) {
        m.set_batched_access(self != Pipeline::PerLine);
        m.set_replay(self == Pipeline::Replay);
    }
}

/// Replay-engine engagement counters observed on the replay pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Engagement {
    windows: u64,
    passes: u64,
    stride_elements: u64,
}

impl Engagement {
    fn of(m: &Machine) -> Self {
        Engagement {
            windows: m.replay_windows(),
            passes: m.replay_passes(),
            stride_elements: m.replay_stride_elements(),
        }
    }

    /// True when any closed-form mode (window, pass, or strided) applied.
    fn engaged(self) -> bool {
        self.windows + self.passes > 0
    }
}

/// Runs `body` under all three pipelines and asserts full `RunReport`
/// bit-identity; returns the replay pipeline's engagement counters so
/// callers can assert the scenario actually engaged the engine.
fn assert_replay_bit_identical(config: &MachineConfig, body: impl Fn(&mut Machine)) -> Engagement {
    let run = |pipeline: Pipeline| {
        let mut m = Machine::new(config.clone());
        pipeline.configure(&mut m);
        body(&mut m);
        let engagement = Engagement::of(&m);
        (m.finish(), engagement)
    };
    let (per_line, e0) = run(Pipeline::PerLine);
    let (batched, e1) = run(Pipeline::Batched);
    let (replay, engagement) = run(Pipeline::Replay);
    assert_eq!(e0, Engagement::default());
    assert_eq!(e1, Engagement::default());
    assert_eq!(batched, per_line, "batched (replay off) diverged");
    assert_eq!(replay, per_line, "replay diverged from the reference");
    engagement
}

/// A run that straddles the local→pool tier boundary mid-stream: pages bind
/// first-touch during replayed windows and the capacity spill must land on
/// the same page in the same order as the exact walk.
#[test]
fn replay_is_exact_across_tier_boundary() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let bytes = 120 * PAGE_SIZE;
    let engagement = assert_replay_bit_identical(&config, |m| {
        let a = m.alloc("stream", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        m.read(a, 0, bytes);
        m.read(a, 0, bytes);
        m.phase_end();
    });
    assert!(
        engagement.engaged(),
        "scenario must exercise the replay engine"
    );
}

/// A hot line is re-seeded into a set the stream aliases, both before the
/// stream and between chunks of it: the foreign resident line must block or
/// exit replay without changing a single counter.
#[test]
fn replay_is_exact_with_aliasing_hot_line() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let hot = m.alloc("hot", "t", PAGE_SIZE);
        let stream_bytes = 80 * PAGE_SIZE;
        let a = m.alloc("stream", "t", stream_bytes);
        m.phase_start("p");
        m.touch(hot, PAGE_SIZE);
        m.touch(a, stream_bytes);
        for _ in 0..3 {
            // Refresh the hot line so it is recently-stamped when the stream
            // floods its set, then stream in two chunks with another hot
            // access splitting the streak mid-run.
            m.read(hot, 0, 64);
            m.read(a, 0, stream_bytes / 2);
            m.read(hot, 128, 64);
            m.read(a, stream_bytes / 2, stream_bytes / 2);
        }
        m.phase_end();
    });
    assert!(
        engagement.engaged(),
        "scenario must exercise the replay engine"
    );
}

/// Ranges that start and end mid-page: replay must hand the partial tail
/// back to the exact walk with a fully materialized cache state.
#[test]
fn replay_is_exact_for_runs_ending_mid_page() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let bytes = 64 * PAGE_SIZE;
        let a = m.alloc("stream", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        // End mid-page.
        m.read(a, 0, 37 * PAGE_SIZE + 13 * 64);
        // Start mid-page (and mid-line), end mid-page.
        m.read(a, 24, 29 * PAGE_SIZE + 333);
        // Full object again to re-engage.
        m.read(a, 0, bytes);
        m.phase_end();
    });
    assert!(
        engagement.engaged(),
        "scenario must exercise the replay engine"
    );
}

/// The prefetcher is toggled off and on again in the middle of a contiguous
/// stream: the toggle must flush replay state and the reports must stay
/// identical, including prefetch counters.
#[test]
fn replay_is_exact_when_prefetcher_toggles_mid_run() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let bytes = 60 * PAGE_SIZE;
        let a = m.alloc("stream", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        m.read(a, 0, 30 * PAGE_SIZE);
        m.set_prefetch_enabled(false);
        // Contiguous continuation of the same stream, prefetcher now off.
        m.read(a, 30 * PAGE_SIZE, 20 * PAGE_SIZE);
        m.set_prefetch_enabled(true);
        m.read(a, 50 * PAGE_SIZE, 10 * PAGE_SIZE);
        m.read(a, 0, bytes);
        m.phase_end();
    });
    assert!(
        engagement.engaged(),
        "scenario must exercise the replay engine"
    );
}

/// A stream trained while the prefetcher was on, then interrupted by a long
/// replayed run with the prefetcher *off*, must resume with its stream-table
/// entry intact: replay materialization must not shift a frozen stream
/// table (regression test — the entries are only shifted when the windows
/// actually advanced the prefetcher clock).
#[test]
fn replay_with_prefetcher_off_preserves_foreign_stream_training() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let b = m.alloc("trained", "t", 4 * PAGE_SIZE);
        let stream_bytes = 90 * PAGE_SIZE;
        let a = m.alloc("stream", "t", stream_bytes);
        m.phase_start("p");
        m.touch(b, 4 * PAGE_SIZE);
        m.touch(a, stream_bytes);
        // Train a stream mid-page on `b` with the prefetcher on.
        m.read(b, 0, 24 * 64);
        // Replay-length run with the prefetcher off: the stream table stays
        // frozen while windows are replayed.
        m.set_prefetch_enabled(false);
        m.read(a, 0, stream_bytes);
        m.read(a, 0, stream_bytes);
        // Resume `b`'s interrupted sequential run with the prefetcher on:
        // the trained entry must still be found.
        m.set_prefetch_enabled(true);
        m.read(b, 24 * 64, 24 * 64);
        m.phase_end();
    });
    assert!(
        engagement.engaged(),
        "scenario must exercise the replay engine"
    );
}

/// Disabling replay mid-run materializes in-flight state exactly.
#[test]
fn replay_toggle_mid_run_is_exact() {
    let config = MachineConfig::test_config();
    let run = |toggle: bool| {
        let mut m = Machine::new(config.clone());
        let bytes = 96 * PAGE_SIZE;
        let a = m.alloc("stream", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        m.read(a, 0, bytes / 2);
        if toggle {
            assert!(m.replay_enabled());
            m.set_replay(false);
            assert!(!m.replay_enabled());
        }
        m.read(a, bytes / 2, bytes / 2);
        m.read(a, 0, bytes);
        m.phase_end();
        m.finish()
    };
    assert_eq!(run(true), run(false));
}

/// Whole repeated passes (back-to-back identical whole-object calls) whose
/// count differs between runs, separated by chain-breaking scalar traffic:
/// every run must re-detect from scratch and stay bit-identical.
#[test]
fn replay_pass_count_change_between_runs_is_exact() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let bytes = 32 * PAGE_SIZE;
        let a = m.alloc("loop", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        for (run, passes) in [6usize, 3, 9].into_iter().enumerate() {
            for _ in 0..passes {
                m.read(a, 0, bytes);
            }
            // A scalar access breaks the pass chain between runs.
            m.access(a, (run as u64) * 192, 64, AccessKind::Write);
        }
        m.phase_end();
    });
    assert!(
        engagement.passes > 0,
        "repeated whole-object calls must replay passes: {engagement:?}"
    );
}

/// A loop of whole-object passes whose final call covers only part of the
/// object: the partial pass must exit closed form and materialize exactly.
#[test]
fn replay_final_partial_pass_is_exact() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let bytes = 32 * PAGE_SIZE;
        let a = m.alloc("loop", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        for _ in 0..8 {
            m.read(a, 0, bytes);
        }
        // Final partial pass, ending mid-page and mid-line.
        m.read(a, 0, bytes / 2 + 7 * 64 + 13);
        m.phase_end();
    });
    assert!(
        engagement.passes > 0,
        "repeated whole-object calls must replay passes: {engagement:?}"
    );
}

/// The prefetcher is toggled off and back on between whole-object passes:
/// each toggle hard-resets replay, and each segment must re-engage and stay
/// bit-identical including prefetch counters.
#[test]
fn replay_prefetcher_toggle_between_passes_is_exact() {
    let config = MachineConfig::test_config();
    let engagement = assert_replay_bit_identical(&config, |m| {
        let bytes = 32 * PAGE_SIZE;
        let a = m.alloc("loop", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        for _ in 0..5 {
            m.read(a, 0, bytes);
        }
        m.set_prefetch_enabled(false);
        for _ in 0..5 {
            m.read(a, 0, bytes);
        }
        m.set_prefetch_enabled(true);
        for _ in 0..5 {
            m.read(a, 0, bytes);
        }
        m.phase_end();
    });
    assert!(
        engagement.passes > 0,
        "repeated whole-object calls must replay passes: {engagement:?}"
    );
}

/// A long-run script mixing whole-object streams (which engage replay) with
/// scalar accesses, gathers, strided sweeps and a mid-script free.
fn replay_script() -> impl Strategy<Value = Vec<(u8, u64, u64, u64, bool)>> {
    prop::collection::vec((0u8..6, 0u64..64, 1u64..48, 1u64..24, any::<bool>()), 1..16)
}

/// A hot-promotion policy tuned for the tiny test configuration: epochs every
/// 2048 application DRAM lines, promote at heat 16, demote under pressure at
/// heat 4.
fn test_hot_promote() -> TieringSpec {
    TieringSpec::HotPromote(HotPromote {
        demote_heat: 4.0,
        ..HotPromote::new(2048, 16.0)
    })
}

/// Drives a workload body on a machine per (pipeline, tiering spec) and
/// returns the report plus the replay engagement counters.
fn run_tiered(
    config: &MachineConfig,
    spec: Option<&TieringSpec>,
    pipeline: Pipeline,
    body: impl Fn(&mut Machine),
) -> (dismem::sim::RunReport, Engagement) {
    let mut m = Machine::new(config.clone());
    pipeline.configure(&mut m);
    if let Some(spec) = spec {
        m.set_tiering_spec(spec);
    }
    body(&mut m);
    let engagement = Engagement::of(&m);
    (m.finish(), engagement)
}

/// A hot/cold working set under capacity pressure: the cold object fills the
/// local tier, the hot object spills to the pool entirely and is then
/// streamed repeatedly in page-misaligned chunks so replay streaks survive
/// call boundaries while migrations land between the calls.
fn hot_cold_body(passes: usize, free_hot_at: Option<usize>) -> impl Fn(&mut Machine) {
    move |m: &mut Machine| {
        let cold = m.alloc("cold", "t", 40 * PAGE_SIZE);
        let hot = m.alloc("hot", "t", 48 * PAGE_SIZE);
        m.phase_start("init");
        m.touch(cold, 40 * PAGE_SIZE);
        m.touch(hot, 48 * PAGE_SIZE);
        m.phase_end();
        m.phase_start("loop");
        for pass in 0..passes {
            // Two chunks per pass with a mid-page boundary: the second call
            // continues the first's streak, so an epoch firing at the chunk
            // close between them lands while replay state is live.
            let split = 17 * PAGE_SIZE + 24 * 64;
            m.read(hot, 0, split);
            m.read(hot, split, 48 * PAGE_SIZE - split);
            if Some(pass) == free_hot_at {
                m.free(hot);
                m.phase_end();
                return;
            }
            m.flops(10_000);
        }
        m.phase_end();
    }
}

/// Migrations landing while the replay engine is armed or replaying must
/// leave all three pipelines bit-identical: any applied migration hard-resets
/// the replay engine, and the policy's decisions are pipeline-independent.
#[test]
fn tiering_migration_mid_replay_stream_is_exact() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let spec = test_hot_promote();
    let body = hot_cold_body(10, None);
    let (per_line, _) = run_tiered(&config, Some(&spec), Pipeline::PerLine, &body);
    let (batched, _) = run_tiered(&config, Some(&spec), Pipeline::Batched, &body);
    let (replay, engagement) = run_tiered(&config, Some(&spec), Pipeline::Replay, &body);
    assert!(
        engagement.engaged(),
        "scenario must exercise the replay engine"
    );
    assert!(
        per_line.tiering.promotions > 0 && per_line.tiering.demotions > 0,
        "scenario must migrate: {:?}",
        per_line.tiering
    );
    assert_eq!(batched, per_line, "batched diverged under migrations");
    assert_eq!(replay, per_line, "replay diverged under migrations");
}

/// Migrations landing while whole-pass replay is engaged (repeated identical
/// whole-object calls, not chunked streaks): every applied epoch must
/// hard-reset pass state, and the loop must re-engage afterwards.
#[test]
fn tiering_migration_mid_pass_replay_is_exact() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let spec = test_hot_promote();
    let body = |m: &mut Machine| {
        let cold = m.alloc("cold", "t", 40 * PAGE_SIZE);
        let hot = m.alloc("hot", "t", 48 * PAGE_SIZE);
        m.phase_start("init");
        m.touch(cold, 40 * PAGE_SIZE);
        m.touch(hot, 48 * PAGE_SIZE);
        m.phase_end();
        m.phase_start("loop");
        for _ in 0..14 {
            // One whole-object call per pass: the pass detector, not the
            // window detector, owns this shape.
            m.read(hot, 0, 48 * PAGE_SIZE);
            m.flops(10_000);
        }
        m.phase_end();
    };
    let (per_line, _) = run_tiered(&config, Some(&spec), Pipeline::PerLine, body);
    let (batched, _) = run_tiered(&config, Some(&spec), Pipeline::Batched, body);
    let (replay, engagement) = run_tiered(&config, Some(&spec), Pipeline::Replay, body);
    assert!(
        engagement.passes > 0,
        "whole-object loop must replay passes: {engagement:?}"
    );
    assert!(
        per_line.tiering.promotions > 0,
        "scenario must migrate: {:?}",
        per_line.tiering
    );
    assert_eq!(batched, per_line, "batched diverged under migrations");
    assert_eq!(replay, per_line, "replay diverged under migrations");
}

/// A strided sweep over an object straddling the local/pool tier boundary:
/// element sequences cross from local into remote pages every pass, and the
/// closed-form strided replay must keep all three pipelines bit-identical.
#[test]
fn strided_sweep_across_tier_boundary_is_exact() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let engagement = assert_replay_bit_identical(&config, |m| {
        let bytes = 80 * PAGE_SIZE;
        let a = m.alloc("sweep", "t", bytes);
        m.phase_start("p");
        // First-touch binds the first 40 pages local, the rest on the pool.
        m.touch(a, bytes);
        let stride = 320u64; // 5 lines: coprime with the page size in lines
        let count = bytes / stride;
        for _ in 0..6 {
            m.strided(a, 0, count, 8, stride, AccessKind::Read);
        }
        m.phase_end();
    });
    assert!(
        engagement.stride_elements > 0,
        "strided sweep must replay elements in closed form: {engagement:?}"
    );
}

/// Freeing an object whose pages were partially promoted must release every
/// page from the tier it currently sits on, on every pipeline.
#[test]
fn tiering_free_of_partially_promoted_object_is_exact() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    // A tight move cap keeps the promotion partial when the free lands.
    let spec = TieringSpec::HotPromote(HotPromote {
        demote_heat: 4.0,
        max_moves_per_epoch: 7,
        ..HotPromote::new(2048, 16.0)
    });
    let body = |m: &mut Machine| {
        hot_cold_body(6, Some(3))(m);
        // After the free, a fresh allocation reuses the released capacity.
        let late = m.alloc("late", "t", 24 * PAGE_SIZE);
        m.phase_start("tail");
        m.touch(late, 24 * PAGE_SIZE);
        m.read(late, 0, 24 * PAGE_SIZE);
        m.phase_end();
    };
    let (per_line, _) = run_tiered(&config, Some(&spec), Pipeline::PerLine, body);
    let (batched, _) = run_tiered(&config, Some(&spec), Pipeline::Batched, body);
    let (replay, _) = run_tiered(&config, Some(&spec), Pipeline::Replay, body);
    let t = &per_line.tiering;
    assert!(
        t.promotions > 0,
        "scenario must promote before the free: {t:?}"
    );
    let hot = per_line.allocation("hot").unwrap();
    assert!(hot.freed);
    assert_eq!(hot.pages_local + hot.pages_pool, 0, "freed pages released");
    // Tier occupancy stays consistent: only the cold and late objects remain.
    assert_eq!(
        per_line.local_pages_used + per_line.pool_pages_used,
        40 + 24
    );
    assert_eq!(batched, per_line);
    assert_eq!(replay, per_line);
}

/// Promotions fill the local tier right up to its capacity; a subsequent
/// first touch that no tier can hold must abort with the same simulated OOM
/// on every pipeline (migrations never change total occupancy, so the OOM
/// lands on the same page).
#[test]
fn tiering_promotion_then_oom_is_identical_across_pipelines() {
    let config = MachineConfig::test_config()
        .with_local_capacity(8 * PAGE_SIZE)
        .with_pool_capacity(8 * PAGE_SIZE);
    let spec = TieringSpec::HotPromote(HotPromote {
        demote_heat: 4.0,
        ..HotPromote::new(512, 8.0)
    });
    for pipeline in [Pipeline::PerLine, Pipeline::Batched, Pipeline::Replay] {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_tiered(&config, Some(&spec), pipeline, |m| {
                let a = m.alloc("a", "t", 12 * PAGE_SIZE);
                m.phase_start("p");
                m.touch(a, 12 * PAGE_SIZE);
                // Hammer the pool-resident tail until promotions fire.
                for _ in 0..8 {
                    m.read(a, 8 * PAGE_SIZE, 4 * PAGE_SIZE);
                }
                // 12 + 5 pages exceed the 16 pages of total capacity.
                let b = m.alloc("b", "t", 5 * PAGE_SIZE);
                m.touch(b, 5 * PAGE_SIZE);
                m.phase_end();
            })
        }));
        let err = result.expect_err("over-capacity touch must abort");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"?").to_string());
        assert!(
            msg.contains("simulated OOM abort"),
            "unexpected panic: {msg}"
        );
    }
}

/// The phase-dwell counters (hot-set shifts, dwell epochs, peak hot-set
/// size) are derived from the hotness tracker at epoch boundaries, so they
/// must be measured — and bit-identical — on all three pipelines. The body
/// alternates between two disjoint hot regions so the hot set demonstrably
/// moves, and full `RunReport` equality pins the dwell counters along with
/// everything else.
#[test]
fn dwell_counters_see_hot_set_shifts_and_stay_bit_identical() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let spec = test_hot_promote();
    let body = |m: &mut Machine| {
        let a = m.alloc("arena", "t", 96 * PAGE_SIZE);
        m.phase_start("p");
        m.touch(a, 96 * PAGE_SIZE);
        // Hammer the two halves of the arena alternately: each phase's hot
        // set is one half, so every phase boundary is a hot-set shift.
        for phase in 0..6u64 {
            let base = (phase % 2) * 48 * PAGE_SIZE;
            for _ in 0..8 {
                m.read(a, base, 48 * PAGE_SIZE);
            }
        }
        m.phase_end();
    };
    let (per_line, _) = run_tiered(&config, Some(&spec), Pipeline::PerLine, body);
    let (batched, _) = run_tiered(&config, Some(&spec), Pipeline::Batched, body);
    let (replay, _) = run_tiered(&config, Some(&spec), Pipeline::Replay, body);
    let t = &per_line.tiering;
    assert!(t.epochs > 0, "epochs must fire: {t:?}");
    assert!(t.hot_set_shifts > 0, "the hot set must move: {t:?}");
    assert!(t.dwell_epochs_total > 0, "shifts close dwells: {t:?}");
    assert!(t.hot_set_pages_max > 0);
    assert!(t.mean_dwell_epochs() > 0.0);
    assert_eq!(batched, per_line, "batched dwell counters diverged");
    assert_eq!(replay, per_line, "replay dwell counters diverged");
}

/// The periodic rebalancer is deterministic across pipelines too.
#[test]
fn periodic_rebalance_is_exact_across_pipelines() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let spec = TieringSpec::PeriodicRebalance(PeriodicRebalance::new(2048, 2, 64));
    let body = hot_cold_body(10, None);
    let (per_line, _) = run_tiered(&config, Some(&spec), Pipeline::PerLine, &body);
    let (batched, _) = run_tiered(&config, Some(&spec), Pipeline::Batched, &body);
    let (replay, _) = run_tiered(&config, Some(&spec), Pipeline::Replay, &body);
    assert!(per_line.tiering.promotions > 0);
    assert_eq!(batched, per_line);
    assert_eq!(replay, per_line);
}

/// Replays the hot/cold chunked-stream workload in `steps` half-pass steps
/// (two page-misaligned chunks per pass, so odd step boundaries land with a
/// replay streak live across the cut). Used by the snapshot round-trip suite
/// to run the same workload uninterrupted and split at an arbitrary step.
fn hot_cold_prelude(m: &mut Machine) -> dismem::trace::ObjectHandle {
    let cold = m.alloc("cold", "t", 40 * PAGE_SIZE);
    let hot = m.alloc("hot", "t", 48 * PAGE_SIZE);
    m.phase_start("init");
    m.touch(cold, 40 * PAGE_SIZE);
    m.touch(hot, 48 * PAGE_SIZE);
    m.phase_end();
    m.phase_start("loop");
    hot
}

fn hot_cold_step(m: &mut Machine, hot: dismem::trace::ObjectHandle, step: usize) {
    let split = 17 * PAGE_SIZE + 24 * 64;
    if step % 2 == 0 {
        m.read(hot, 0, split);
    } else {
        m.read(hot, split, 48 * PAGE_SIZE - split);
        m.flops(10_000);
    }
}

/// Runs the hot/cold workload twice on one (pipeline, tiering) combination:
/// once uninterrupted, once snapshotted at `snapshot_at` steps (mid-phase,
/// possibly mid-streak, with migration heat pending) — the snapshot goes
/// through the full binary envelope — and resumed on a restored machine.
/// Both full `RunReport`s must be bit-identical.
fn assert_snapshot_resume_is_exact(
    config: &MachineConfig,
    spec: Option<&TieringSpec>,
    pipeline: Pipeline,
    steps: usize,
    snapshot_at: usize,
) {
    use dismem::sim::MachineSnapshot;
    assert!(snapshot_at <= steps);
    let fresh = |pipeline: Pipeline| {
        let mut m = Machine::new(config.clone());
        pipeline.configure(&mut m);
        if let Some(spec) = spec {
            m.set_tiering_spec(spec);
        }
        m
    };

    let mut m = fresh(pipeline);
    let hot = hot_cold_prelude(&mut m);
    for step in 0..steps {
        hot_cold_step(&mut m, hot, step);
    }
    m.phase_end();
    let uninterrupted = m.finish();

    let mut m = fresh(pipeline);
    let hot = hot_cold_prelude(&mut m);
    for step in 0..snapshot_at {
        hot_cold_step(&mut m, hot, step);
    }
    let snapshot = m.snapshot().expect("spec-installed machine snapshots");
    drop(m);
    // Round-trip through the versioned binary envelope, as a campaign would.
    let key_digest = 0x5EED_CAFE_F00D_u64;
    let bytes = snapshot.to_snapshot_bytes(key_digest);
    let decoded = MachineSnapshot::from_snapshot_bytes(&bytes, key_digest)
        .expect("snapshot bytes round-trip");
    // The restored machine carries its pipeline/tiering state in the
    // snapshot — it is deliberately NOT reconfigured here.
    let mut resumed = Machine::restore(&decoded).expect("snapshot restores");
    for step in snapshot_at..steps {
        hot_cold_step(&mut resumed, hot, step);
    }
    resumed.phase_end();
    let resumed = resumed.finish();
    assert_eq!(
        resumed, uninterrupted,
        "resume diverged (pipeline split at step {snapshot_at}/{steps})"
    );
}

/// Snapshot/restore mid-run is invisible on every pipeline, with the cut
/// placed mid-pass so replay streak state is live at the snapshot point and
/// a hot-promotion policy has migration heat pending.
#[test]
fn snapshot_resume_is_exact_on_all_pipelines() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let spec = test_hot_promote();
    for pipeline in [Pipeline::PerLine, Pipeline::Batched, Pipeline::Replay] {
        // Step 7 is mid-pass (odd boundary): the snapshot lands between the
        // two chunks of a pass, with the streak live on the replay pipeline.
        assert_snapshot_resume_is_exact(&config, Some(&spec), pipeline, 20, 7);
    }
}

/// Snapshot/restore around whole-pass replay: repeated identical
/// whole-object calls are cut mid-loop, so pass-detection state is rebuilt
/// from scratch on the restored machine and must not change the report.
#[test]
fn snapshot_resume_is_exact_mid_pass_loop() {
    let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
    let run = |cut: Option<usize>| {
        let mut m = Machine::new(config.clone());
        m.set_tiering_spec(&test_hot_promote());
        let hot = hot_cold_prelude(&mut m);
        let mut machine = m;
        for pass in 0..12 {
            if Some(pass) == cut {
                let snapshot = machine.snapshot().unwrap();
                let bytes = snapshot.to_snapshot_bytes(7);
                let decoded = dismem::sim::MachineSnapshot::from_snapshot_bytes(&bytes, 7).unwrap();
                machine = Machine::restore(&decoded).unwrap();
            }
            machine.read(hot, 0, 48 * PAGE_SIZE);
        }
        machine.phase_end();
        let report = machine.finish();
        assert!(report.tiering.promotions > 0, "scenario must migrate");
        report
    };
    let uninterrupted = run(None);
    for cut in [1, 5, 11] {
        assert_eq!(run(Some(cut)), uninterrupted, "cut at pass {cut}");
    }
}

/// The replay-proptest workload body: long bulk streams (the replay engine's
/// bread and butter) mixed with gathers, strided sweeps, scalar accesses and
/// a mid-script free, driven by a random script.
fn replay_script_body<'a>(script: &'a [(u8, u64, u64, u64, bool)]) -> impl Fn(&mut Machine) + 'a {
    move |m: &mut Machine| {
        let obj_pages = 96u64;
        let a = m.alloc("a", "prop", obj_pages * PAGE_SIZE);
        let b = m.alloc_with_policy(
            "b",
            "prop",
            obj_pages * PAGE_SIZE,
            PlacementPolicy::ForceRemote,
        );
        let temp = m.alloc("temp", "prop", 8 * PAGE_SIZE);
        m.phase_start("mixed");
        m.touch(temp, 8 * PAGE_SIZE);
        m.touch(a, obj_pages * PAGE_SIZE);
        for (i, &(op, page, len_pages, count, flag)) in script.iter().enumerate() {
            let handle = if flag { a } else { b };
            let kind = if page % 2 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let offset = (page % obj_pages) * PAGE_SIZE;
            let len = (len_pages * PAGE_SIZE).min(obj_pages * PAGE_SIZE - offset);
            match op {
                0 | 1 => m.access_range(handle, offset, len, kind),
                2 => {
                    let offs: Vec<u64> = (0..count)
                        .map(|k| {
                            ((page + 3 * k + 7 * k * k) * 2048 + 8 * k)
                                % (obj_pages * PAGE_SIZE - 8)
                        })
                        .collect();
                    m.gather(handle, &offs, 8);
                }
                3 => {
                    let stride = 64 + (len % 1024);
                    let count = count.min((obj_pages * PAGE_SIZE - offset) / stride.max(1));
                    if count > 0 {
                        m.strided(handle, offset, count, 8, stride, kind);
                    }
                }
                4 => m.flops(len * 1000),
                _ => m.access(handle, offset, (len % 256).max(1), kind),
            }
            if i == script.len() / 2 {
                m.free(temp);
            }
        }
        m.phase_end();
    }
}

/// Runs `body` on one pipeline with a [`FlightRecorder`] attached and
/// returns the report plus the recorder's event stream.
fn run_tiered_recorded(
    config: &MachineConfig,
    spec: &TieringSpec,
    pipeline: Pipeline,
    body: impl Fn(&mut Machine),
) -> (dismem::sim::RunReport, Vec<TraceEvent>) {
    let mut m = Machine::new(config.clone());
    pipeline.configure(&mut m);
    m.set_tiering_spec(spec);
    m.set_recorder(Box::new(FlightRecorder::new()));
    body(&mut m);
    let report = m.finish();
    let recorder = m
        .take_recorder()
        .expect("recorder installed above survives the run")
        .into_any()
        .downcast::<FlightRecorder>()
        .expect("flight recorder comes back");
    let (events, _metrics) = recorder.into_parts();
    (report, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Replay-on, replay-off and per-line execution of arbitrary mixed
    /// scripts with runs long enough to engage the replay engine must
    /// produce bit-identical run reports.
    #[test]
    fn replay_execution_is_bit_identical(script in replay_script()) {
        let config = MachineConfig::test_config().with_local_capacity(80 * PAGE_SIZE);
        // Not every random script reaches steady state; the deterministic
        // tests above pin engagement. This one pins only equivalence.
        let _ = assert_replay_bit_identical(&config, replay_script_body(&script));
    }

    /// Installing the `Static` tiering policy must be indistinguishable — to
    /// the bit, across all three pipelines — from never touching the tiering
    /// subsystem: today's first-touch pinning is the reference behaviour.
    #[test]
    fn static_tiering_is_bit_identical_to_untiered(script in replay_script()) {
        let config = MachineConfig::test_config().with_local_capacity(80 * PAGE_SIZE);
        let body = replay_script_body(&script);
        let mut reports = Vec::new();
        for pipeline in [Pipeline::PerLine, Pipeline::Batched, Pipeline::Replay] {
            for spec in [None, Some(TieringSpec::Static)] {
                reports.push(run_tiered(&config, spec.as_ref(), pipeline, &body).0);
            }
        }
        prop_assert_eq!(&reports[0].tiering, &dismem::sim::TieringReport::default());
        let (first, rest) = reports.split_first().unwrap();
        for r in rest {
            prop_assert_eq!(r, first);
        }
    }

    /// Dynamic tiering itself is deterministic and pipeline-independent:
    /// arbitrary scripts under an aggressive hot-promotion policy produce
    /// bit-identical reports on all three pipelines.
    #[test]
    fn hot_promote_is_bit_identical_across_pipelines(script in replay_script()) {
        let config = MachineConfig::test_config().with_local_capacity(80 * PAGE_SIZE);
        let spec = test_hot_promote();
        let body = replay_script_body(&script);
        let (per_line, _) = run_tiered(&config, Some(&spec), Pipeline::PerLine, &body);
        let (batched, _) = run_tiered(&config, Some(&spec), Pipeline::Batched, &body);
        let (replay, _) = run_tiered(&config, Some(&spec), Pipeline::Replay, &body);
        prop_assert_eq!(&batched, &per_line);
        prop_assert_eq!(&replay, &per_line);
    }

    /// Snapshot round-trip bit-identity, property form: an arbitrary cut
    /// point in the hot/cold stream (mid-pass cuts included), on every
    /// pipeline, with and without a live migration policy, resumes to a
    /// report bit-identical to the uninterrupted run's.
    #[test]
    fn snapshot_resume_is_bit_identical(
        steps in 2usize..16,
        cut_seed in 0usize..1000,
        pipeline_idx in 0usize..3,
        tiered in any::<bool>(),
    ) {
        let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
        let pipeline = [Pipeline::PerLine, Pipeline::Batched, Pipeline::Replay][pipeline_idx];
        let spec = test_hot_promote();
        let spec = tiered.then_some(&spec);
        let snapshot_at = cut_seed % (steps + 1);
        assert_snapshot_resume_is_exact(&config, spec, pipeline, steps, snapshot_at);
    }

    /// The flight recorder is read-only — attaching one must not change a
    /// single report bit on any pipeline — and the *semantic* event stream
    /// (epoch closes, migrations, spills) is itself part of the equivalence
    /// contract: per-line, batched and replay runs of the same script must
    /// emit identical semantic events with identical simulated timestamps.
    /// (Replay engage/exit events are pipeline-level diagnostics and are
    /// expected to differ.)
    #[test]
    fn recording_is_invisible_and_semantic_events_are_pipeline_identical(
        script in replay_script(),
    ) {
        let config = MachineConfig::test_config().with_local_capacity(80 * PAGE_SIZE);
        let spec = test_hot_promote();
        let body = replay_script_body(&script);
        let mut semantic_streams = Vec::new();
        for pipeline in [Pipeline::PerLine, Pipeline::Batched, Pipeline::Replay] {
            let (plain, _) = run_tiered(&config, Some(&spec), pipeline, &body);
            let (recorded, events) = run_tiered_recorded(&config, &spec, pipeline, &body);
            prop_assert_eq!(&recorded, &plain, "recording perturbed the report");
            // Timestamps never run backwards within one recording.
            for w in events.windows(2) {
                prop_assert!(w[1].timestamp() >= w[0].timestamp(), "{:?}", w);
            }
            semantic_streams.push(
                events
                    .into_iter()
                    .filter(TraceEvent::is_semantic)
                    .collect::<Vec<_>>(),
            );
        }
        let (first, rest) = semantic_streams.split_first().unwrap();
        for stream in rest {
            prop_assert_eq!(stream, first, "semantic events diverged across pipelines");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batched line-walk fast path and the per-line reference pipeline
    /// must produce bit-identical run reports — counters, per-phase
    /// runtimes, timeline samples, placement and page histograms — for
    /// arbitrary mixes of bulk-range, gather, scatter, strided and scalar
    /// accesses.
    #[test]
    fn batched_execution_is_bit_identical_to_per_line(script in bulk_script()) {
        for big_cache in [false, true] {
            let batched = run_bulk_script(&script, true, big_cache);
            let per_line = run_bulk_script(&script, false, big_cache);
            prop_assert_eq!(batched, per_line);
        }
    }

    /// L2 fill conservation: every line filled into L2 is either a demand
    /// miss or a prefetch, for arbitrary access patterns.
    #[test]
    fn machine_counter_conservation(script in access_script(), prefetch in any::<bool>()) {
        let config = MachineConfig::test_config().with_prefetch(prefetch);
        let mut m = Machine::new(config);
        let obj = m.alloc("obj", "prop", 64 * PAGE_SIZE);
        m.phase_start("p");
        for (page, len, write) in script {
            let offset = page * PAGE_SIZE;
            let len = len.min(64 * PAGE_SIZE - offset);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            m.access(obj, offset, len, kind);
        }
        m.phase_end();
        let report = m.finish();
        prop_assert_eq!(
            report.total.l2_lines_in,
            report.total.l2_demand_misses + report.total.pf_issued
        );
        // Useful + useless prefetches never exceed issued prefetches.
        prop_assert!(report.total.pf_useful + report.total.useless_hwpf <= report.total.pf_issued + report.total.pf_useful);
        prop_assert!(report.total.useless_hwpf <= report.total.pf_issued);
        // Timeline durations account for the whole runtime.
        let sum: f64 = report.timeline.iter().map(|s| s.duration_s).sum();
        prop_assert!((sum - report.total_runtime_s).abs() <= 1e-9 * report.total_runtime_s.max(1e-30));
    }

    /// Re-timing under an idle profile reproduces the original runtime, and
    /// runtime is monotone in the level of constant interference.
    #[test]
    fn retime_is_consistent_and_monotone(script in access_script(), loi_steps in 1usize..6) {
        let config = MachineConfig::test_config().with_local_capacity(8 * PAGE_SIZE);
        let mut m = Machine::new(config);
        let obj = m.alloc("obj", "prop", 64 * PAGE_SIZE);
        m.phase_start("p");
        for (page, len, write) in script {
            let offset = page * PAGE_SIZE;
            let len = len.min(64 * PAGE_SIZE - offset);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            m.access(obj, offset, len, kind);
        }
        m.phase_end();
        let report = m.finish();
        let idle = report.retime(&InterferenceProfile::Idle).total_runtime_s;
        prop_assert!((idle - report.total_runtime_s).abs() <= 1e-9 * report.total_runtime_s.max(1e-30));
        let mut prev = idle;
        for i in 1..=loi_steps {
            let loi = i as f64 * 0.15;
            let t = report.retime(&InterferenceProfile::Constant(loi)).total_runtime_s;
            prop_assert!(t + 1e-15 >= prev, "runtime must not decrease with more interference");
            prev = t;
        }
    }

    /// First-touch placement never exceeds the local capacity and accounts
    /// for every touched page exactly once.
    #[test]
    fn placement_respects_capacity(
        object_pages in 1u64..48,
        local_pages in 1u64..48,
        force_remote in any::<bool>(),
    ) {
        let config = MachineConfig::test_config().with_local_capacity(local_pages * PAGE_SIZE);
        let mut m = Machine::new(config);
        let policy = if force_remote { PlacementPolicy::ForceRemote } else { PlacementPolicy::FirstTouch };
        let obj = m.alloc_with_policy("obj", "prop", object_pages * PAGE_SIZE, policy);
        m.phase_start("touch");
        m.touch(obj, object_pages * PAGE_SIZE);
        m.phase_end();
        let report = m.finish();
        prop_assert!(report.local_pages_used <= local_pages);
        prop_assert_eq!(report.local_pages_used + report.pool_pages_used, object_pages);
        if force_remote {
            prop_assert_eq!(report.local_pages_used, 0);
        }
        let space_tier = if force_remote { Tier::Pool } else { Tier::Local };
        let _ = space_tier; // placement detail checked through the counts above
    }

    /// Scaling curves are monotone, bounded and end at 100% of the accesses.
    #[test]
    fn scaling_curve_properties(counts in prop::collection::vec(1u64..1000, 1..200)) {
        let mut h = PageHistogram::new();
        for (page, count) in counts.iter().enumerate() {
            h.record(page as u64, *count);
        }
        let curve = h.scaling_curve(counts.len() as u64 * 2, 50);
        for w in curve.windows(2) {
            prop_assert!(w[1].access_fraction + 1e-12 >= w[0].access_fraction);
            prop_assert!(w[1].footprint_fraction >= w[0].footprint_fraction);
        }
        for p in &curve {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p.access_fraction));
        }
        prop_assert!((curve.last().unwrap().access_fraction - 1.0).abs() < 1e-9);
    }

    /// Roofline attainable performance equals min(F, B·I) and is monotone in
    /// the arithmetic intensity.
    #[test]
    fn roofline_properties(
        peak_flops in 1.0e9..1.0e12,
        bandwidth in 1.0e9..1.0e12,
        ai_a in 0.001f64..1000.0,
        ai_b in 0.001f64..1000.0,
    ) {
        let r = Roofline::new(peak_flops, bandwidth);
        let (lo, hi) = if ai_a < ai_b { (ai_a, ai_b) } else { (ai_b, ai_a) };
        prop_assert!(r.attainable(lo) <= r.attainable(hi) + 1e-6);
        prop_assert!((r.attainable(ai_a) - (bandwidth * ai_a).min(peak_flops)).abs() < 1e-3);
        prop_assert!(r.attainable(ai_a) <= peak_flops);
    }

    /// Five-number summaries are ordered and bracket every sample; quartiles
    /// agree with the percentile function.
    #[test]
    fn summary_properties(values in prop::collection::vec(-1.0e6f64..1.0e6, 1..300)) {
        let s = five_number_summary(&values);
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        for &v in &values {
            prop_assert!(v >= s.min - 1e-9 && v <= s.max + 1e-9);
        }
        prop_assert!((s.median - percentile(&values, 50.0)).abs() < 1e-9);
    }

    /// Interference schedules always report a LoI within the configured
    /// bounds, at any query time.
    #[test]
    fn interference_profile_bounds(
        epochs in prop::collection::vec((0.0f64..100.0, 0.0f64..1.0), 1..20),
        t in 0.0f64..200.0,
    ) {
        let profile = InterferenceProfile::schedule(epochs.clone());
        let loi = profile.loi_at(t);
        prop_assert!((0.0..=1.0).contains(&loi));
        let avg = profile.average_loi(100.0);
        prop_assert!((0.0..=1.0).contains(&avg));
    }
}
