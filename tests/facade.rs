//! Manifest-wiring tests: every facade re-export must resolve and the core
//! types behind each must be usable, so a broken crate dependency or a
//! renamed re-export fails here rather than deep inside an experiment.

use dismem::analysis::{five_number_summary, memory_evolution, top10_systems, Roofline};
use dismem::core::{derive_guidance, QuantitativeStudy};
use dismem::lbench::{LBenchModel, LBenchParams};
use dismem::profiler::{pooled_config, run_workload, RunOptions};
use dismem::sched::{campaign::compare_policies, CampaignConfig};
use dismem::sim::{Machine, MachineConfig};
use dismem::trace::{MemoryEngine, TraceRecorder, CACHE_LINE_SIZE, PAGE_SIZE};
use dismem::workloads::{InputScale, WorkloadKind};

/// The facade version comes from the shared `workspace.package.version`.
#[test]
fn version_is_plumbed_from_the_workspace_manifest() {
    assert!(!dismem::VERSION.is_empty());
    assert!(
        dismem::VERSION.split('.').count() >= 3,
        "expected a semver-ish version, got {:?}",
        dismem::VERSION
    );
}

/// `dismem::trace` — constants and the trace recorder engine.
// The trace constants are compile-time checkable.
const _: () = assert!(CACHE_LINE_SIZE == 64 && PAGE_SIZE >= CACHE_LINE_SIZE);

#[test]
fn trace_reexports_work() {
    let mut rec = TraceRecorder::new();
    let obj = rec.alloc("A", "facade", PAGE_SIZE);
    rec.phase_start("touch");
    rec.touch(obj, PAGE_SIZE);
    rec.phase_end();
    assert!(rec.stats().bytes_read + rec.stats().bytes_written > 0);
}

/// `dismem::sim` — the machine simulator behind every experiment.
#[test]
fn sim_reexports_work() {
    let mut m = Machine::new(MachineConfig::test_config());
    let obj = m.alloc("A", "facade", PAGE_SIZE);
    m.phase_start("touch");
    m.touch(obj, PAGE_SIZE);
    m.phase_end();
    let report = m.finish();
    assert!(report.total_runtime_s > 0.0);
}

/// `dismem::workloads` — every workload kind instantiates and runs on the
/// test machine configuration.
#[test]
fn every_workload_kind_instantiates_on_the_test_config() {
    assert_eq!(WorkloadKind::all().len(), 6);
    for kind in WorkloadKind::all() {
        let w = kind.instantiate_tiny();
        assert_eq!(w.name(), kind.name());
        assert!(w.expected_footprint_bytes() > 0, "{}", kind.name());
        let mut m = Machine::new(MachineConfig::test_config());
        w.run(&mut m);
        let report = m.finish();
        assert!(
            report.total_runtime_s > 0.0,
            "{} must spend time on the machine",
            kind.name()
        );
    }
    // Input scales are exposed too.
    assert_eq!(InputScale::all().len(), 3);
}

/// `dismem::profiler` — the runner and pooled-configuration helpers.
#[test]
fn profiler_reexports_work() {
    let w = WorkloadKind::Bfs.instantiate_tiny();
    let cfg = pooled_config(&MachineConfig::test_config(), w.as_ref(), 0.5);
    let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
    assert!(report.remote_capacity_ratio() > 0.0);
}

/// `dismem::lbench` — the analytic link-contention model.
#[test]
fn lbench_reexports_work() {
    let model = LBenchModel::from_config(&MachineConfig::test_config());
    assert!(model.measured_loi(8, 1) >= 0.0);
    let _ = LBenchParams::tiny();
}

/// `dismem::analysis` — rooflines, statistics and the systems dataset.
#[test]
fn analysis_reexports_work() {
    let r = Roofline::new(1.0e12, 1.0e11);
    assert!(r.attainable(0.5) <= 1.0e12);
    let s = five_number_summary(&[1.0, 2.0, 3.0]);
    assert_eq!(s.median, 2.0);
    assert!(!top10_systems().is_empty());
    assert!(!memory_evolution().is_empty());
}

/// `dismem::sched` — the scheduling campaign entry points.
#[test]
fn sched_reexports_work() {
    let w = WorkloadKind::Hpl.instantiate_tiny();
    let cfg = pooled_config(&MachineConfig::test_config(), w.as_ref(), 0.5);
    let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
    let campaign = CampaignConfig {
        runs: 4,
        epochs_per_run: 2,
        seed: 7,
    };
    let cmp = compare_policies("HPL", &report, &campaign);
    assert_eq!(cmp.baseline.runtimes_s.len(), 4);
}

/// `dismem::core` — the quantitative-study facade ties it all together.
#[test]
fn core_reexports_work() {
    let study = QuantitativeStudy::new(
        WorkloadKind::XsBench.instantiate_tiny(),
        MachineConfig::test_config(),
    );
    let level2 = study.level2(0.5);
    let level3 = study.level3(0.5, &[0.0, 25.0]);
    let guidance = derive_guidance(&level2, &level3);
    assert!(!guidance.notes.is_empty());
}
